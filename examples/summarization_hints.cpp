// The paper's motivating application (§I): once quantities are aligned, a
// text summarizer can prefer sentences that reference aggregates (they
// summarize the table) over sentences that enumerate individual cells.
// This program aligns the Figure 1a health example and prints per-sentence
// hints plus a full explanation of each decision.

#include <iostream>

#include "core/explain.h"
#include "core/pipeline.h"
#include "corpus/generator.h"
#include "corpus/paper_examples.h"
#include "util/logging.h"

int main() {
  using namespace briq;

  core::BriqConfig config;
  corpus::CorpusOptions options;
  options.num_documents = 150;
  options.seed = 42;
  corpus::Corpus corpus = corpus::GenerateCorpus(options);
  std::vector<core::PreparedDocument> prepared;
  for (const auto& d : corpus.documents) {
    prepared.push_back(core::PrepareDocument(d, config));
  }
  std::vector<const core::PreparedDocument*> train;
  for (const auto& d : prepared) train.push_back(&d);
  core::BriqSystem briq(config);
  BRIQ_CHECK_OK(briq.Train(train));

  corpus::Document doc = corpus::Figure1aHealth();
  core::PreparedDocument target = core::PrepareDocument(doc, config);
  core::DocumentAlignment alignment = briq.Align(target);

  std::cout << "== summarization hints ==\n";
  for (const core::SentenceHint& hint :
       core::SummarizationHints(target, alignment)) {
    std::cout << (hint.PreferForSummary() ? "[INCLUDE] " : "[  skip ] ")
              << hint.text << "\n"
              << "           aggregates=" << hint.aggregate_references
              << " singles=" << hint.single_cell_references
              << " unaligned=" << hint.unaligned_mentions << "\n";
  }

  std::cout << "\n== decision explanations ==\n";
  for (const core::AlignmentDecision& d : alignment.decisions) {
    std::cout << core::ExplainDecision(target, config, d) << "\n";
  }
  return 0;
}
