#include "util/string_util.h"

#include <gtest/gtest.h>

namespace briq::util {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitWhitespaceTest, DropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a  b\tc \n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(TrimTest, Basic) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("hello"), "hello");
  EXPECT_EQ(Trim("\t\n x \r"), "x");
  EXPECT_EQ(Trim("   "), "");
}

TEST(CaseTest, LowerUpper) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
  EXPECT_EQ(ToUpper("MiXeD 123"), "MIXED 123");
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(IsDigitsTest, Basic) {
  EXPECT_TRUE(IsDigits("0123456789"));
  EXPECT_FALSE(IsDigits(""));
  EXPECT_FALSE(IsDigits("12a"));
  EXPECT_FALSE(IsDigits("-12"));
}

TEST(ReplaceAllTest, Basic) {
  EXPECT_EQ(ReplaceAll("aXbXc", "X", "-"), "a-b-c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");  // non-overlapping
  EXPECT_EQ(ReplaceAll("abc", "", "-"), "abc");
}

TEST(EqualsIgnoreCaseTest, Basic) {
  EXPECT_TRUE(EqualsIgnoreCase("EUR", "eur"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
  EXPECT_FALSE(EqualsIgnoreCase("ab", "abc"));
}

TEST(FormatDoubleTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(3.5), "3.5");
  EXPECT_EQ(FormatDouble(4.0), "4");
  EXPECT_EQ(FormatDouble(3.263, 3), "3.263");
  EXPECT_EQ(FormatDouble(2.70, 2), "2.7");
  EXPECT_EQ(FormatDouble(-0.0), "0");
  EXPECT_EQ(FormatDouble(-1.25, 2), "-1.25");
}

TEST(ThousandsSeparatorsTest, Basic) {
  EXPECT_EQ(WithThousandsSeparators(0), "0");
  EXPECT_EQ(WithThousandsSeparators(999), "999");
  EXPECT_EQ(WithThousandsSeparators(1000), "1,000");
  EXPECT_EQ(WithThousandsSeparators(1144716), "1,144,716");
  EXPECT_EQ(WithThousandsSeparators(-36900), "-36,900");
}

}  // namespace
}  // namespace briq::util
