#include "obs/prometheus.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/export.h"
#include "obs/metrics.h"
#include "util/json.h"

#ifndef BRIQ_NO_METRICS
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#endif

namespace briq::obs {
namespace {

// --- Name mapping and text rendering (pure, both builds) --------------------

TEST(PrometheusNameTest, DotsBecomeUnderscores) {
  EXPECT_EQ(PrometheusName("briq.align.documents"), "briq_align_documents");
  EXPECT_EQ(PrometheusName("briq.stream.queue_depth"),
            "briq_stream_queue_depth");
}

TEST(PrometheusNameTest, InvalidCharactersAreSanitized) {
  EXPECT_EQ(PrometheusName("briq.per-doc latency"), "briq_per_doc_latency");
  EXPECT_EQ(PrometheusName("7layers.deep"), "_7layers_deep");
  EXPECT_EQ(PrometheusName("keep:colons"), "keep:colons");
}

TEST(PrometheusTextTest, EmptySnapshotRendersEmpty) {
  EXPECT_EQ(MetricsToPrometheus(MetricsSnapshot{}), "");
}

TEST(PrometheusTextTest, CountersGetTotalSuffixAndMeta) {
  MetricsSnapshot snapshot;
  snapshot.counters["briq.align.documents"] = 42;
  const std::string text = MetricsToPrometheus(snapshot);
  EXPECT_NE(text.find("# HELP briq_align_documents_total"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE briq_align_documents_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("briq_align_documents_total 42\n"), std::string::npos);
}

TEST(PrometheusTextTest, GaugesRenderVerbatim) {
  MetricsSnapshot snapshot;
  snapshot.gauges["briq.stream.queue_depth"] = -3;
  const std::string text = MetricsToPrometheus(snapshot);
  EXPECT_NE(text.find("# TYPE briq_stream_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("briq_stream_queue_depth -3\n"), std::string::npos);
}

TEST(PrometheusTextTest, FreshnessLinesAppearWithScrapeTime) {
  MetricsSnapshot snapshot;
  snapshot.counters["briq.train.documents"] = 1;
  snapshot.capture_unix_seconds = 100.0;
  const std::string text = MetricsToPrometheus(snapshot, 103.5);
  EXPECT_NE(text.find("# TYPE briq_scrape_timestamp_seconds gauge"),
            std::string::npos);
  EXPECT_NE(text.find("briq_scrape_timestamp_seconds 103.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE briq_snapshot_age_seconds gauge"),
            std::string::npos);
  EXPECT_NE(text.find("briq_snapshot_age_seconds 3.5\n"), std::string::npos);
}

TEST(PrometheusTextTest, FreshnessOmittedByDefaultAndAgeClampedAtZero) {
  MetricsSnapshot snapshot;
  snapshot.counters["briq.train.documents"] = 1;
  snapshot.capture_unix_seconds = 100.0;
  // Default argument: byte-identical to the pre-freshness rendering.
  const std::string plain = MetricsToPrometheus(snapshot);
  EXPECT_EQ(plain.find("briq_scrape_timestamp_seconds"), std::string::npos);
  EXPECT_EQ(plain.find("briq_snapshot_age_seconds"), std::string::npos);
  // A scrape clock behind the capture clock clamps the age at zero
  // rather than exposing a negative gauge.
  const std::string behind = MetricsToPrometheus(snapshot, 99.0);
  EXPECT_NE(behind.find("briq_snapshot_age_seconds 0\n"), std::string::npos);
  // An unstamped snapshot reports the scrape time but cannot claim an age.
  snapshot.capture_unix_seconds = 0.0;
  const std::string unstamped = MetricsToPrometheus(snapshot, 99.0);
  EXPECT_NE(unstamped.find("briq_scrape_timestamp_seconds 99\n"),
            std::string::npos);
  EXPECT_EQ(unstamped.find("briq_snapshot_age_seconds"), std::string::npos);
}

TEST(PrometheusTextTest, HistogramBucketsAreCumulativeWithInf) {
  MetricsSnapshot snapshot;
  HistogramSnapshot h;
  h.bounds = {0.5, 1.0};
  h.counts = {3, 4, 5};  // last slot: overflow beyond the 1.0 edge
  h.count = 12;
  h.sum = 30.25;
  snapshot.histograms["briq.align.doc_seconds"] = h;
  const std::string text = MetricsToPrometheus(snapshot);
  EXPECT_NE(text.find("# TYPE briq_align_doc_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("briq_align_doc_seconds_bucket{le=\"0.5\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("briq_align_doc_seconds_bucket{le=\"1\"} 7\n"),
            std::string::npos);
  // Overflowed observations appear only in +Inf, which must equal _count.
  EXPECT_NE(text.find("briq_align_doc_seconds_bucket{le=\"+Inf\"} 12\n"),
            std::string::npos);
  EXPECT_NE(text.find("briq_align_doc_seconds_sum 30.25\n"),
            std::string::npos);
  EXPECT_NE(text.find("briq_align_doc_seconds_count 12\n"),
            std::string::npos);
}

#ifndef BRIQ_NO_METRICS

// The exposition and the JSON export must tell the same story: +Inf ==
// _count == the JSON "count", _sum == the JSON "sum", with overflow
// observations (beyond the last le edge) included in both.
TEST(PrometheusTextTest, AgreesWithJsonExportIncludingOverflow) {
  MetricRegistry registry;
  Histogram* h =
      registry.GetHistogram("briq.align.doc_seconds", {0.001, 0.01});
  h->Observe(0.0005);
  h->Observe(0.005);
  h->Observe(99.0);  // > last edge: overflow bucket
  const MetricsSnapshot snapshot = registry.Snapshot();

  const std::string text = MetricsToPrometheus(snapshot);
  const util::Json json =
      MetricsToJson(snapshot).at("histograms").at("briq.align.doc_seconds");
  const uint64_t json_count =
      static_cast<uint64_t>(json.at("count").AsDouble());
  EXPECT_EQ(json_count, 3u);
  EXPECT_NE(text.find("briq_align_doc_seconds_bucket{le=\"+Inf\"} " +
                      std::to_string(json_count) + "\n"),
            std::string::npos);
  EXPECT_NE(text.find("briq_align_doc_seconds_count " +
                      std::to_string(json_count) + "\n"),
            std::string::npos);
  // The last finite bucket excludes the overflow observation.
  EXPECT_NE(text.find("briq_align_doc_seconds_bucket{le=\"0.01\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("briq_align_doc_seconds_sum " +
                      std::to_string(99.0005 + 0.005).substr(0, 7)),
            std::string::npos);
}

// --- HTTP server (real build only) ------------------------------------------

/// Minimal loopback HTTP GET, enough to exercise the responder.
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsHttpServerTest, ServesMetricsHealthzAnd404) {
  MetricRegistry::Global().GetCounter("briq.align.documents")->Add(3);
  MetricsHttpServer server;
  ASSERT_TRUE(server.Start(/*port=*/0).ok());
  ASSERT_GT(server.port(), 0);

  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("briq_align_documents_total"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE"), std::string::npos);

  const std::string healthz = HttpGet(server.port(), "/healthz");
  EXPECT_NE(healthz.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(healthz.find("ok"), std::string::npos);

  const std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

  EXPECT_FALSE(server.quit_requested());
  const std::string quit = HttpGet(server.port(), "/quitquitquit");
  EXPECT_NE(quit.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_TRUE(server.quit_requested());
  EXPECT_GE(server.requests_served(), 4u);

  server.Stop();
  server.Stop();  // idempotent
}

TEST(MetricsHttpServerTest, RejectsDoubleStart) {
  MetricsHttpServer server;
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_FALSE(server.Start(0).ok());
  server.Stop();
}

#else  // BRIQ_NO_METRICS

TEST(NoMetricsHttpServerTest, StartFailsCleanly) {
  MetricsHttpServer server;
  const util::Status status = server.Start(0);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(server.port(), 0);
  server.Stop();  // still safe
}

#endif  // BRIQ_NO_METRICS

}  // namespace
}  // namespace briq::obs
