# Keeps the -DBRIQ_NO_METRICS=ON configuration green, run by ctest (see
# tests/CMakeLists.txt): configures a sub-build with the instruments
# compiled out, builds the obs layer plus the requested test binaries, and
# runs them against the stub semantics (inert instruments, empty
# snapshots, null queue observer, no flusher thread). Only util + obs +
# the listed binaries compile, so the check stays fast.
#
# Expects -DSOURCE_DIR=<repo root>, -DWORKDIR=<scratch build dir>, and
# -DTARGETS=<'|'-separated test binary names> ('|' instead of ';' so the
# list survives add_test argument quoting).

if(NOT SOURCE_DIR OR NOT WORKDIR OR NOT TARGETS)
  message(FATAL_ERROR
    "no_metrics_build: SOURCE_DIR, WORKDIR, and TARGETS must be set")
endif()

string(REPLACE "|" ";" test_binaries "${TARGETS}")

execute_process(
  COMMAND "${CMAKE_COMMAND}" -S "${SOURCE_DIR}" -B "${WORKDIR}"
          -DBRIQ_NO_METRICS=ON
  RESULT_VARIABLE rv
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR
    "configure with -DBRIQ_NO_METRICS=ON failed (${rv}):\n${out}\n${err}")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" --build "${WORKDIR}"
          --target ${test_binaries}
  RESULT_VARIABLE rv
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR
    "build with -DBRIQ_NO_METRICS=ON failed (${rv}):\n${out}\n${err}")
endif()

foreach(binary ${test_binaries})
  execute_process(
    COMMAND "${WORKDIR}/tests/${binary}"
    RESULT_VARIABLE rv
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR
      "${binary} failed under -DBRIQ_NO_METRICS=ON (${rv}):\n${out}\n${err}")
  endif()
endforeach()
