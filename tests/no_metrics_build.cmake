# Keeps the -DBRIQ_NO_METRICS=ON configuration green, run by ctest (see
# tests/CMakeLists.txt): configures a sub-build with the instruments
# compiled out, builds the obs layer plus its tests, and runs them against
# the stub semantics (inert instruments, empty snapshots, null queue
# observer). Only util + obs + three test binaries compile, so the check
# stays fast.
#
# Expects -DSOURCE_DIR=<repo root> and -DWORKDIR=<scratch build dir>.

if(NOT SOURCE_DIR OR NOT WORKDIR)
  message(FATAL_ERROR "no_metrics_build: SOURCE_DIR and WORKDIR must be set")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -S "${SOURCE_DIR}" -B "${WORKDIR}"
          -DBRIQ_NO_METRICS=ON
  RESULT_VARIABLE rv
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR
    "configure with -DBRIQ_NO_METRICS=ON failed (${rv}):\n${out}\n${err}")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" --build "${WORKDIR}"
          --target logging_test metrics_test trace_test
  RESULT_VARIABLE rv
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR
    "build with -DBRIQ_NO_METRICS=ON failed (${rv}):\n${out}\n${err}")
endif()

foreach(binary logging_test metrics_test trace_test)
  execute_process(
    COMMAND "${WORKDIR}/tests/${binary}"
    RESULT_VARIABLE rv
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR
      "${binary} failed under -DBRIQ_NO_METRICS=ON (${rv}):\n${out}\n${err}")
  endif()
endforeach()
