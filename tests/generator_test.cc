// Tests of the synthetic corpus generator: ground-truth consistency is the
// critical invariant — every annotated alignment must be recoverable from
// the generated table by evaluating its aggregate function.

#include "corpus/generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "corpus/domain_profile.h"
#include "html/page_segmenter.h"
#include "quantity/quantity_parser.h"
#include "table/virtual_cell.h"
#include "util/random.h"

namespace briq::corpus {
namespace {

Corpus SmallCorpus(size_t n = 40, uint64_t seed = 77) {
  CorpusOptions options;
  options.num_documents = n;
  options.seed = seed;
  return GenerateCorpus(options);
}

TEST(GeneratorTest, ProducesRequestedCount) {
  EXPECT_EQ(SmallCorpus(25).documents.size(), 25u);
}

TEST(GeneratorTest, DeterministicForSeed) {
  Corpus a = SmallCorpus(10, 5);
  Corpus b = SmallCorpus(10, 5);
  ASSERT_EQ(a.documents.size(), b.documents.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.documents[i].paragraphs, b.documents[i].paragraphs);
    EXPECT_EQ(a.documents[i].ground_truth.size(),
              b.documents[i].ground_truth.size());
  }
}

TEST(GeneratorTest, DocumentsHaveTablesAndText) {
  for (const Document& d : SmallCorpus().documents) {
    EXPECT_FALSE(d.tables.empty()) << d.id;
    EXPECT_FALSE(d.paragraphs.empty()) << d.id;
    EXPECT_FALSE(d.ground_truth.empty()) << d.id;
  }
}

TEST(GeneratorTest, GroundTruthSpansMatchParagraphs) {
  for (const Document& d : SmallCorpus().documents) {
    for (const GroundTruthAlignment& gt : d.ground_truth) {
      ASSERT_LT(static_cast<size_t>(gt.paragraph), d.paragraphs.size());
      const std::string& para = d.paragraphs[gt.paragraph];
      ASSERT_LE(gt.span.end, para.size());
      EXPECT_EQ(para.substr(gt.span.begin, gt.span.length()), gt.surface);
    }
  }
}

TEST(GeneratorTest, GroundTruthTargetsAreConsistent) {
  // Property: the annotated target's aggregate value must be close to the
  // numeric value stated in the text (exact up to the chosen realization).
  for (const Document& d : SmallCorpus(60).documents) {
    for (const GroundTruthAlignment& gt : d.ground_truth) {
      ASSERT_LT(static_cast<size_t>(gt.target.table_index), d.tables.size());
      const table::Table& t = d.tables[gt.target.table_index];
      std::vector<double> values;
      for (const table::CellRef& ref : gt.target.cells) {
        ASSERT_TRUE(t.cell(ref).numeric())
            << d.id << " cell (" << ref.row << "," << ref.col << ")";
        values.push_back(t.cell(ref).quantity->value);
      }
      double target_value = table::EvaluateAggregate(
          gt.target.func == table::AggregateFunction::kNone
              ? table::AggregateFunction::kNone
              : gt.target.func,
          values);
      ASSERT_TRUE(std::isfinite(target_value)) << d.id;

      // Parse the value back out of the surface.
      auto mentions = quantity::ExtractQuantities(gt.surface);
      ASSERT_FALSE(mentions.empty()) << d.id << " '" << gt.surface << "'";
      double text_value = mentions[0].value;
      double tolerance =
          gt.realization == Realization::kExact ? 1e-6 : 0.35;
      EXPECT_LE(quantity::RelativeDifference(text_value, target_value),
                tolerance)
          << d.id << " '" << gt.surface << "' vs " << target_value;
    }
  }
}

TEST(GeneratorTest, GroundTruthTargetsExistAmongGeneratedMentions) {
  // Every target must correspond to a generatable table mention.
  table::VirtualCellOptions options;
  for (const Document& d : SmallCorpus(40, 123).documents) {
    for (size_t ti = 0; ti < d.tables.size(); ++ti) {
      // pre-generate per table
    }
    for (const GroundTruthAlignment& gt : d.ground_truth) {
      auto mentions = table::GenerateTableMentions(
          d.tables[gt.target.table_index], gt.target.table_index, options);
      bool found = false;
      for (const auto& m : mentions) {
        if (gt.target.Matches(m)) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << d.id << " '" << gt.surface << "'";
    }
  }
}

TEST(GeneratorTest, MentionTypeMixMatchesProfileShape) {
  Corpus corpus = SmallCorpus(300, 9);
  size_t single = 0;
  size_t aggregate = 0;
  for (const Document& d : corpus.documents) {
    for (const auto& gt : d.ground_truth) {
      if (gt.target.func == table::AggregateFunction::kNone) {
        ++single;
      } else {
        ++aggregate;
      }
    }
  }
  // Paper Table I: single-cell ~87% of positives.
  double frac = static_cast<double>(single) / (single + aggregate);
  EXPECT_GT(frac, 0.75);
  EXPECT_LT(frac, 0.97);
}

TEST(GeneratorTest, DomainsRespectWeights) {
  CorpusOptions options;
  options.num_documents = 50;
  options.seed = 3;
  options.domain_weights = {{"health", 1.0}};
  for (const Document& d : GenerateCorpus(options).documents) {
    EXPECT_EQ(d.domain, "health");
  }
}

TEST(GeneratorTest, HtmlRoundTripPreservesStructure) {
  util::Rng rng(21);
  Document doc = GenerateDocument(GetDomainProfile("finance"), "x", &rng);
  std::string html = RenderHtml(doc);
  html::Page page = html::SegmentPage(html);
  EXPECT_EQ(page.ParagraphCount(), doc.paragraphs.size());
  ASSERT_EQ(page.TableCount(), doc.tables.size());
  // The extracted tables have the same shape and cell content.
  size_t table_block = 0;
  for (const auto& block : page.blocks) {
    if (block.kind != html::PageBlock::Kind::kTable) continue;
    const table::Table& original = doc.tables[table_block];
    EXPECT_EQ(block.table.num_rows(), original.num_rows());
    EXPECT_EQ(block.table.num_cols(), original.num_cols());
    for (int r = 0; r < original.num_rows(); ++r) {
      for (int c = 0; c < original.num_cols(); ++c) {
        EXPECT_EQ(block.table.cell(r, c).raw, original.cell(r, c).raw);
      }
    }
    ++table_block;
  }
}

TEST(GeneratorTest, GeneratedDocumentsPassCorpusFilter) {
  size_t passing = 0;
  Corpus corpus = SmallCorpus(40, 55);
  for (const Document& d : corpus.documents) {
    if (PassesCorpusFilter(d)) ++passing;
  }
  // Generated documents discuss their tables, so the vast majority must
  // pass the DWTC-style selection criteria (vague-template documents can
  // legitimately miss the token-overlap test).
  EXPECT_GE(passing, corpus.size() * 85 / 100);
}

TEST(GeneratorTest, AllDomainProfilesUsable) {
  util::Rng rng(31);
  for (const DomainProfile& p : AllDomainProfiles()) {
    Document d = GenerateDocument(p, "t-" + p.name, &rng);
    EXPECT_FALSE(d.tables.empty()) << p.name;
    EXPECT_FALSE(d.ground_truth.empty()) << p.name;
  }
}

TEST(CorpusFilterTest, RejectsTablelessAndNumberlessDocs) {
  Document no_tables;
  no_tables.paragraphs = {"The value was 42."};
  EXPECT_FALSE(PassesCorpusFilter(no_tables));

  util::Rng rng(41);
  Document d = GenerateDocument(GetDomainProfile("health"), "x", &rng);
  Document no_numbers = d;
  no_numbers.paragraphs = {"Nothing numeric here at all."};
  EXPECT_FALSE(PassesCorpusFilter(no_numbers));
}

}  // namespace
}  // namespace briq::corpus
