// Tests of util::BoundedQueue, the back-pressure primitive of the
// streaming ingestion path: FIFO delivery, capacity enforcement, close
// semantics, and a multi-producer/multi-consumer stress run that the
// BRIQ_SANITIZE=thread build checks for races alongside thread_pool_test.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/bounded_queue.h"

namespace briq::util {
namespace {

TEST(BoundedQueueTest, DeliversInFifoOrder) {
  BoundedQueue<int> queue(10);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.Push(i));
  for (int i = 0; i < 5; ++i) {
    std::optional<int> v = queue.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, CapacityIsClampedToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
}

TEST(BoundedQueueTest, PopAfterCloseDrainsThenEnds) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  EXPECT_EQ(queue.Pop(), std::optional<int>(2));
  EXPECT_EQ(queue.Pop(), std::nullopt);
  EXPECT_EQ(queue.Pop(), std::nullopt);  // stable after end-of-stream
}

TEST(BoundedQueueTest, PushAfterCloseIsRejected) {
  BoundedQueue<int> queue(2);
  queue.Close();
  EXPECT_FALSE(queue.Push(7));
  EXPECT_EQ(queue.Pop(), std::nullopt);
}

TEST(BoundedQueueTest, PushBlocksUntilRoomIsMade) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2));  // blocks until the consumer pops
    second_pushed.store(true);
  });
  // The producer must be parked: capacity 1 and the slot is taken.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(queue.Pop(), std::optional<int>(2));
}

TEST(BoundedQueueTest, CloseReleasesBlockedProducer) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::thread producer([&] { EXPECT_FALSE(queue.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  producer.join();
  // Only the pre-close item survives.
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  EXPECT_EQ(queue.Pop(), std::nullopt);
}

TEST(BoundedQueueTest, CloseReleasesBlockedConsumer) {
  BoundedQueue<int> queue(1);
  std::thread consumer([&] { EXPECT_EQ(queue.Pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  consumer.join();
}

TEST(BoundedQueueTest, SizeNeverExceedsCapacity) {
  BoundedQueue<int> queue(3);
  std::thread producer([&] {
    for (int i = 0; i < 200; ++i) queue.Push(i);
    queue.Close();
  });
  size_t max_seen = 0;
  while (std::optional<int> v = queue.Pop()) {
    max_seen = std::max(max_seen, queue.size() + 1);  // +1: the popped item
  }
  producer.join();
  EXPECT_LE(max_seen, queue.capacity() + 1);
}

// Multi-producer / multi-consumer: every pushed value is popped exactly
// once and nothing is invented. This is the test the TSan build leans on.
TEST(BoundedQueueTest, StressManyProducersManyConsumers) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> queue(8);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }

  std::atomic<long> sum{0};
  std::atomic<int> count{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (std::optional<int> v = queue.Pop()) {
        sum += *v;
        ++count;
      }
    });
  }

  for (auto& t : producers) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();

  const long n = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace briq::util
