// Tests of the remaining util pieces: table printer, logging threshold,
// stopwatch, and the light stemmer.

#include <gtest/gtest.h>

#include <thread>

#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace briq::util {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter printer("title");
  printer.SetHeader({"name", "value"});
  printer.AddRow({"a", "1"});
  printer.AddRow({"long-name", "23"});
  std::string out = printer.ToString();
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| a         | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 23    |"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorRows) {
  TablePrinter printer;
  printer.SetHeader({"x"});
  printer.AddRow({"1"});
  printer.AddSeparator();
  printer.AddRow({"2"});
  std::string out = printer.ToString();
  // header rule + top + separator + bottom = 4 rules.
  size_t rules = 0;
  size_t pos = 0;
  while ((pos = out.find("+---", pos)) != std::string::npos) {
    ++rules;
    pos += 4;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(TablePrinterTest, EmptyTable) {
  TablePrinter printer;
  EXPECT_FALSE(printer.ToString().empty());  // renders rules only, no crash
}

TEST(LoggingTest, ThresholdSuppresses) {
  LogLevel old = GetLogThreshold();
  SetLogThreshold(LogLevel::kError);
  // Below threshold: must not crash and not emit (visually verified by the
  // absence of INFO lines in test output).
  BRIQ_LOG(Info) << "suppressed message";
  BRIQ_LOG(Error) << "(expected in test log) error-level message";
  SetLogThreshold(old);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  BRIQ_CHECK(1 + 1 == 2) << "never printed";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH({ BRIQ_CHECK(false) << "boom"; }, "Check failed");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double elapsed = watch.ElapsedMillis();
  EXPECT_GE(elapsed, 15.0);
  EXPECT_LT(elapsed, 5000.0);
  watch.Reset();
  EXPECT_LT(watch.ElapsedMillis(), 15.0);
}

TEST(StemLightTest, Cases) {
  EXPECT_EQ(StemLight("disorders"), "disorder");
  EXPECT_EQ(StemLight("patients"), "patient");
  EXPECT_EQ(StemLight("class"), "class");     // 'ss' kept
  EXPECT_EQ(StemLight("basis"), "basis");     // 'is' kept
  EXPECT_EQ(StemLight("bonus"), "bonus");     // 'us' kept
  EXPECT_EQ(StemLight("gas"), "gas");         // too short
  EXPECT_EQ(StemLight("company's"), "company");
  EXPECT_EQ(StemLight(""), "");
}

}  // namespace
}  // namespace briq::util
