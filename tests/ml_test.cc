// Tests of the ML substrate: dataset, decision tree, random forest,
// metrics, and grid search.

#include <gtest/gtest.h>

#include <cmath>

#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/grid_search.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "util/random.h"

namespace briq::ml {
namespace {

// ---------------------------------------------------------------------------
// Dataset
// ---------------------------------------------------------------------------

TEST(DatasetTest, AddAndAccess) {
  Dataset d(2);
  d.Add({1.0, 2.0}, 0);
  d.Add({3.0, 4.0}, 1, 2.5);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.num_classes(), 2);
  EXPECT_DOUBLE_EQ(d.feature(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(d.weight(1), 2.5);
  EXPECT_EQ(d.label(0), 0);
}

TEST(DatasetTest, BalanceClassWeightsEqualizesTotals) {
  Dataset d(1);
  for (int i = 0; i < 90; ++i) d.Add({0.0}, 0);
  for (int i = 0; i < 10; ++i) d.Add({1.0}, 1);
  d.BalanceClassWeights();
  double w0 = 0, w1 = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    (d.label(i) == 0 ? w0 : w1) += d.weight(i);
  }
  EXPECT_NEAR(w0, w1, 1e-9);
  EXPECT_NEAR(w0 + w1, 100.0, 1e-9);
}

TEST(DatasetTest, SubsetWithRepetition) {
  Dataset d(1);
  d.Add({1.0}, 0);
  d.Add({2.0}, 1);
  Dataset s = d.Subset({1, 1, 0});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.feature(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(s.feature(2, 0), 1.0);
}

TEST(DatasetTest, RandomSplitDisjointAndComplete) {
  Dataset d(1);
  for (int i = 0; i < 100; ++i) d.Add({static_cast<double>(i)}, 0);
  util::Rng rng(5);
  auto parts = d.RandomSplit({0.8, 0.1, 0.1}, &rng);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].size(), 80u);
  EXPECT_EQ(parts[1].size(), 10u);
  EXPECT_EQ(parts[2].size(), 10u);
  std::set<double> seen;
  for (const auto& p : parts) {
    for (size_t i = 0; i < p.size(); ++i) seen.insert(p.feature(i, 0));
  }
  EXPECT_EQ(seen.size(), 100u);
}

// ---------------------------------------------------------------------------
// Decision tree
// ---------------------------------------------------------------------------

TEST(DecisionTreeTest, LearnsAxisAlignedSplit) {
  Dataset d(2);
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    double x = rng.UniformDouble();
    double y = rng.UniformDouble();
    d.Add({x, y}, x > 0.5 ? 1 : 0);
  }
  DecisionTree tree;
  TreeConfig config;
  tree.Fit(d, config, &rng);
  double probe_lo[2] = {0.2, 0.9};
  double probe_hi[2] = {0.8, 0.1};
  EXPECT_EQ(tree.Predict(probe_lo), 0);
  EXPECT_EQ(tree.Predict(probe_hi), 1);
}

TEST(DecisionTreeTest, PureNodeIsLeaf) {
  Dataset d(1);
  d.Add({1.0}, 0);
  d.Add({2.0}, 0);
  DecisionTree tree;
  util::Rng rng(1);
  tree.Fit(d, {}, &rng);
  EXPECT_EQ(tree.num_nodes(), 1u);
  double probe[1] = {1.5};
  EXPECT_EQ(tree.Predict(probe), 0);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  Dataset d(1);
  util::Rng rng(9);
  for (int i = 0; i < 256; ++i) {
    d.Add({static_cast<double>(i)}, i % 2);
  }
  DecisionTree tree;
  TreeConfig config;
  config.max_depth = 3;
  tree.Fit(d, config, &rng);
  EXPECT_LE(tree.depth(), 3);
}

TEST(DecisionTreeTest, DuplicateFeatureValuesDoNotCrash) {
  // Regression test: identical values must not produce degenerate splits.
  Dataset d(1);
  for (int i = 0; i < 50; ++i) d.Add({1.0}, i % 2);
  for (int i = 0; i < 50; ++i) d.Add({2.0}, 1);
  DecisionTree tree;
  util::Rng rng(2);
  tree.Fit(d, {}, &rng);
  double probe[1] = {2.0};
  EXPECT_EQ(tree.Predict(probe), 1);
}

TEST(DecisionTreeTest, MulticlassProbabilities) {
  Dataset d(1);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 30; ++i) d.Add({static_cast<double>(c)}, c);
  }
  DecisionTree tree;
  util::Rng rng(4);
  tree.Fit(d, {}, &rng);
  double probe[1] = {2.0};
  auto proba = tree.PredictProba(probe);
  ASSERT_EQ(proba.size(), 3u);
  EXPECT_NEAR(proba[2], 1.0, 1e-9);
}

TEST(DecisionTreeTest, ClassWeightsShiftLeafProbabilities) {
  Dataset d(1);
  // Same feature value, mixed labels 80/20 — weights flip the majority.
  for (int i = 0; i < 80; ++i) d.Add({1.0}, 0, 1.0);
  for (int i = 0; i < 20; ++i) d.Add({1.0}, 1, 10.0);
  DecisionTree tree;
  util::Rng rng(6);
  tree.Fit(d, {}, &rng);
  double probe[1] = {1.0};
  EXPECT_EQ(tree.Predict(probe), 1);
}

// ---------------------------------------------------------------------------
// Random forest
// ---------------------------------------------------------------------------

TEST(RandomForestTest, BeatsChanceOnNoisyXor) {
  // XOR with noise: needs depth >= 2 and benefits from ensembling.
  util::Rng rng(11);
  Dataset train(2);
  Dataset test(2);
  for (int i = 0; i < 800; ++i) {
    double x = rng.UniformDouble();
    double y = rng.UniformDouble();
    int label = (x > 0.5) != (y > 0.5) ? 1 : 0;
    if (rng.Bernoulli(0.1)) label = 1 - label;
    (i < 600 ? train : test).Add({x, y}, label);
  }
  RandomForest forest;
  ForestConfig config;
  config.num_trees = 30;
  forest.Fit(train, config);
  int correct = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    int truth = (test.feature(i, 0) > 0.5) != (test.feature(i, 1) > 0.5);
    if (forest.Predict(test.row(i)) == truth) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / test.size(), 0.9);
}

TEST(RandomForestTest, ProbabilitiesAreDistribution) {
  util::Rng rng(13);
  Dataset d(2);
  for (int i = 0; i < 100; ++i) {
    d.Add({rng.UniformDouble(), rng.UniformDouble()}, i % 2);
  }
  RandomForest forest;
  forest.Fit(d, {});
  std::vector<double> p = forest.PredictProba({0.5, 0.5});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
  EXPECT_GE(p[0], 0.0);
  EXPECT_GE(p[1], 0.0);
}

TEST(RandomForestTest, DeterministicForSeed) {
  util::Rng rng(17);
  Dataset d(2);
  for (int i = 0; i < 200; ++i) {
    double x = rng.UniformDouble();
    d.Add({x, rng.UniformDouble()}, x > 0.3 ? 1 : 0);
  }
  ForestConfig config;
  RandomForest a;
  RandomForest b;
  a.Fit(d, config);
  b.Fit(d, config);
  for (double x = 0.05; x < 1.0; x += 0.1) {
    EXPECT_DOUBLE_EQ(a.PredictPositiveProba({x, 0.5}),
                     b.PredictPositiveProba({x, 0.5}));
  }
}

TEST(RandomForestTest, FeatureImportanceFindsSignal) {
  util::Rng rng(19);
  Dataset d(3);
  for (int i = 0; i < 500; ++i) {
    double signal = rng.UniformDouble();
    d.Add({rng.UniformDouble(), signal, rng.UniformDouble()},
          signal > 0.5 ? 1 : 0);
  }
  RandomForest forest;
  forest.Fit(d, {});
  auto importance = forest.FeatureImportance();
  ASSERT_EQ(importance.size(), 3u);
  EXPECT_GT(importance[1], importance[0]);
  EXPECT_GT(importance[1], importance[2]);
  EXPECT_NEAR(importance[0] + importance[1] + importance[2], 1.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, PrecisionRecallF1) {
  BinaryCounts c;
  c.true_positives = 6;
  c.false_positives = 2;
  c.false_negatives = 4;
  EXPECT_DOUBLE_EQ(c.Precision(), 0.75);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.6);
  EXPECT_NEAR(c.F1(), 2 * 0.75 * 0.6 / 1.35, 1e-9);
}

TEST(MetricsTest, EmptyCountsAreZeroNotNan) {
  BinaryCounts c;
  EXPECT_DOUBLE_EQ(c.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.F1(), 0.0);
}

TEST(MetricsTest, CountBinary) {
  BinaryCounts c = CountBinary({1, 1, 0, 0, 1}, {1, 0, 0, 1, 1});
  EXPECT_EQ(c.true_positives, 2u);
  EXPECT_EQ(c.false_positives, 1u);
  EXPECT_EQ(c.false_negatives, 1u);
  EXPECT_EQ(c.true_negatives, 1u);
}

TEST(MetricsTest, RocAucPerfectAndInverted) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.2, 0.8, 0.9}, {0, 0, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(RocAuc({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(RocAuc({0.5, 0.5, 0.5, 0.5}, {0, 1, 0, 1}), 0.5);
}

TEST(MetricsTest, RocAucSingleClassIsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {1, 1}), 0.5);
}

TEST(MetricsTest, EntropyCases) {
  EXPECT_DOUBLE_EQ(Entropy({1.0}), 0.0);
  EXPECT_NEAR(Entropy({0.5, 0.5}), std::log(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(Entropy({}), 0.0);
  EXPECT_DOUBLE_EQ(Entropy({0.0, 0.0}), 0.0);
  // Unnormalized inputs are normalized.
  EXPECT_NEAR(Entropy({2.0, 2.0}), std::log(2.0), 1e-12);
}

TEST(MetricsTest, NormalizedEntropyBounds) {
  EXPECT_DOUBLE_EQ(NormalizedEntropy({1.0}), 0.0);
  EXPECT_NEAR(NormalizedEntropy({1.0, 1.0, 1.0}), 1.0, 1e-12);
  double skewed = NormalizedEntropy({0.9, 0.05, 0.05});
  EXPECT_GT(skewed, 0.0);
  EXPECT_LT(skewed, 1.0);
}

TEST(MetricsTest, ConfusionMatrix) {
  auto m = ConfusionMatrix({0, 1, 2, 1}, {0, 1, 1, 1}, 3);
  EXPECT_EQ(m[0][0], 1u);
  EXPECT_EQ(m[1][1], 2u);
  EXPECT_EQ(m[1][2], 1u);
}

// ---------------------------------------------------------------------------
// Grid search
// ---------------------------------------------------------------------------

TEST(GridSearchTest, ExpandsCrossProduct) {
  ParamGrid grid = {{"a", {1, 2}}, {"b", {10, 20, 30}}};
  auto points = ExpandGrid(grid);
  EXPECT_EQ(points.size(), 6u);
}

TEST(GridSearchTest, FindsArgmax) {
  ParamGrid grid = {{"x", {0, 1, 2, 3, 4}}, {"y", {0, 1, 2}}};
  auto result = GridSearch(grid, [](const ParamMap& p) {
    double x = p.at("x");
    double y = p.at("y");
    return -(x - 3) * (x - 3) - (y - 1) * (y - 1);
  });
  EXPECT_DOUBLE_EQ(result.best_params.at("x"), 3);
  EXPECT_DOUBLE_EQ(result.best_params.at("y"), 1);
  EXPECT_EQ(result.evaluated, 15u);
}

}  // namespace
}  // namespace briq::ml
