#include "html/html_dom.h"

#include <gtest/gtest.h>

namespace briq::html {
namespace {

TEST(DomTest, SimpleTree) {
  auto dom = ParseHtml("<html><body><p>Hello</p></body></html>");
  const Node* p = dom->FindFirst("p");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->InnerText(), "Hello");
}

TEST(DomTest, ImpliedParagraphClose) {
  // Second <p> implicitly closes the first.
  auto dom = ParseHtml("<p>one<p>two</p>");
  auto ps = dom->FindAll("p");
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps[0]->InnerText(), "one");
  EXPECT_EQ(ps[1]->InnerText(), "two");
}

TEST(DomTest, TableImpliedCloses) {
  // Missing </td> and </tr> everywhere — the implied-close rules recover
  // the row structure.
  auto dom = ParseHtml("<table><tr><td>a<td>b<tr><td>c<td>d</table>");
  auto rows = dom->FindAll("tr");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0]->FindAll("td").size(), 2u);
  EXPECT_EQ(rows[1]->FindAll("td").size(), 2u);
}

TEST(DomTest, TableClosesOpenParagraph) {
  auto dom = ParseHtml("<p>text<table><tr><td>1</td></tr></table>");
  const Node* p = dom->FindFirst("p");
  ASSERT_NE(p, nullptr);
  // The table must be a sibling of the paragraph, not its child.
  EXPECT_EQ(p->FindFirst("table"), nullptr);
  EXPECT_NE(dom->FindFirst("table"), nullptr);
}

TEST(DomTest, VoidElementsDoNotNest) {
  auto dom = ParseHtml("<p>a<br>b</p>");
  const Node* p = dom->FindFirst("p");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->InnerText(), "a b");
  const Node* br = p->FindFirst("br");
  ASSERT_NE(br, nullptr);
  EXPECT_TRUE(br->children.empty());
}

TEST(DomTest, StrayEndTagIgnored) {
  auto dom = ParseHtml("<p>text</div></p>");
  EXPECT_EQ(dom->FindFirst("p")->InnerText(), "text");
}

TEST(DomTest, InnerTextCollapsesWhitespace) {
  auto dom = ParseHtml("<p>  a \n\n  b\t c  </p>");
  EXPECT_EQ(dom->FindFirst("p")->InnerText(), "a b c");
}

TEST(DomTest, InnerTextJoinsChildren) {
  auto dom = ParseHtml("<td>Automation <b>&amp;</b> Control</td>");
  EXPECT_EQ(dom->FindFirst("td")->InnerText(), "Automation & Control");
}

TEST(DomTest, FindAllDocumentOrder) {
  auto dom = ParseHtml("<div><p>1</p><div><p>2</p></div><p>3</p></div>");
  auto ps = dom->FindAll("p");
  ASSERT_EQ(ps.size(), 3u);
  EXPECT_EQ(ps[0]->InnerText(), "1");
  EXPECT_EQ(ps[1]->InnerText(), "2");
  EXPECT_EQ(ps[2]->InnerText(), "3");
}

TEST(DomTest, AttributePreserved) {
  auto dom = ParseHtml("<td colspan=\"3\">x</td>");
  EXPECT_EQ(dom->FindFirst("td")->Attribute("colspan"), "3");
}

TEST(DomTest, EmptyInput) {
  auto dom = ParseHtml("");
  EXPECT_TRUE(dom->children.empty());
}

}  // namespace
}  // namespace briq::html
