#include "obs/flusher.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/json.h"

namespace briq::obs {
namespace {

namespace fs = std::filesystem;

/// Per-process unique temp path: gtest_discover_tests runs every TEST as
/// its own process, so a fixed name would race under `ctest -j`.
std::string TempPath(const std::string& stem) {
  return (fs::path(::testing::TempDir()) /
          (stem + "-" + std::to_string(::getpid()) + ".jsonl"))
      .string();
}

std::vector<util::Json> ReadJsonl(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::vector<util::Json> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    util::Result<util::Json> parsed = util::Json::Parse(line);
    EXPECT_TRUE(parsed.ok()) << "unparseable JSONL line: " << line;
    if (parsed.ok()) records.push_back(std::move(parsed).value());
  }
  return records;
}

/// Spins until `flusher` has completed at least `n` flushes (bounded).
void WaitForFlushes(const MetricsFlusher& flusher, size_t n) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (flusher.flush_count() < n &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

#ifndef BRIQ_NO_METRICS

TEST(FlusherTest, IntervalTriggerWritesMonotoneJsonlRecords) {
  MetricRegistry registry;
  Counter* docs = registry.GetCounter("briq.stream.documents");
  const std::string path = TempPath("flusher_interval");

  FlusherOptions options;
  options.interval_seconds = 0.05;
  options.poll_seconds = 0.01;
  options.path = path;
  MetricsFlusher flusher(options, &registry);
  ASSERT_TRUE(flusher.Start().ok());
  for (int i = 0; i < 10; ++i) {
    docs->Add(3);
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }
  WaitForFlushes(flusher, 3);
  flusher.Stop();
  EXPECT_TRUE(flusher.status().ok());

  const std::vector<util::Json> records = ReadJsonl(path);
  ASSERT_GE(records.size(), 3u);  // baseline + >=1 interval + final
  EXPECT_EQ(records.front().at("trigger").AsString(), "start");
  EXPECT_EQ(records.back().at("trigger").AsString(), "final");
  bool saw_interval = false;
  double prev_ts = -1.0;
  double prev_docs = -1.0;
  uint64_t prev_counter_total = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    const util::Json& r = records[i];
    EXPECT_EQ(static_cast<size_t>(r.at("flush_index").AsDouble()), i);
    if (r.at("trigger").AsString() == "interval") saw_interval = true;
    // Monotonically non-decreasing time, doc count, and cumulative
    // counters (the crash-safety acceptance criterion).
    const double ts = r.at("ts_monotonic_sec").AsDouble();
    EXPECT_GE(ts, prev_ts);
    prev_ts = ts;
    const double docs_total = r.at("docs_total").AsDouble();
    EXPECT_GE(docs_total, prev_docs);
    prev_docs = docs_total;
    uint64_t counter_total = 0;
    for (const auto& [name, value] :
         r.at("cumulative").at("counters").members()) {
      counter_total += static_cast<uint64_t>(value.AsDouble());
    }
    EXPECT_GE(counter_total, prev_counter_total);
    prev_counter_total = counter_total;
    EXPECT_TRUE(r.Has("delta"));
    EXPECT_TRUE(r.Has("rates"));
    EXPECT_TRUE(r.Has("stages_delta_seconds"));
  }
  EXPECT_TRUE(saw_interval);
  EXPECT_EQ(static_cast<uint64_t>(records.back().at("docs_total").AsDouble()),
            30u);
  fs::remove(path);
}

TEST(FlusherTest, DocsTriggerFiresWithoutInterval) {
  MetricRegistry registry;
  Counter* docs = registry.GetCounter("briq.stream.documents");
  const std::string path = TempPath("flusher_docs");

  FlusherOptions options;
  options.interval_seconds = 0.0;  // docs-only cadence
  options.every_docs = 10;
  options.poll_seconds = 0.005;
  options.path = path;
  MetricsFlusher flusher(options, &registry);
  ASSERT_TRUE(flusher.Start().ok());
  docs->Add(25);
  WaitForFlushes(flusher, 2);  // baseline + the docs-triggered flush
  flusher.Stop();

  const std::vector<util::Json> records = ReadJsonl(path);
  ASSERT_GE(records.size(), 3u);
  bool saw_docs = false;
  for (const util::Json& r : records) {
    if (r.at("trigger").AsString() == "docs") saw_docs = true;
  }
  EXPECT_TRUE(saw_docs);
  fs::remove(path);
}

TEST(FlusherTest, FinalRecordCarriesDeltasAndRates) {
  MetricRegistry registry;
  registry.GetCounter("briq.stream.documents")->Add(7);
  const std::string path = TempPath("flusher_final");

  FlusherOptions options;
  options.interval_seconds = 60.0;  // never fires within the test
  options.path = path;
  MetricsFlusher flusher(options, &registry);
  ASSERT_TRUE(flusher.Start().ok());
  registry.GetCounter("briq.stream.documents")->Add(13);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  flusher.Stop();

  const std::vector<util::Json> records = ReadJsonl(path);
  ASSERT_EQ(records.size(), 2u);  // baseline + final, nothing in between
  const util::Json& final_record = records.back();
  EXPECT_EQ(final_record.at("trigger").AsString(), "final");
  // Cumulative includes the pre-Start 7; the delta window is Start..Stop.
  EXPECT_EQ(
      static_cast<uint64_t>(final_record.at("docs_total").AsDouble()), 20u);
  EXPECT_EQ(static_cast<uint64_t>(final_record.at("delta")
                                      .at("counters")
                                      .at("briq.stream.documents")
                                      .AsDouble()),
            13u);
  EXPECT_TRUE(final_record.at("rates").Has("docs_per_sec"));
  EXPECT_GT(final_record.at("rates").at("docs_per_sec").AsDouble(), 0.0);
  fs::remove(path);
}

TEST(FlusherTest, StopIsIdempotentAndRestartable) {
  MetricRegistry registry;
  MetricsFlusher flusher(FlusherOptions{}, &registry);
  ASSERT_TRUE(flusher.Start().ok());
  EXPECT_FALSE(flusher.Start().ok());  // double-start rejected
  flusher.Stop();
  const size_t after_first_stop = flusher.flush_count();
  flusher.Stop();  // no-op
  EXPECT_EQ(flusher.flush_count(), after_first_stop);
  ASSERT_TRUE(flusher.Start().ok());  // a stopped flusher can restart
  flusher.Stop();
  EXPECT_GT(flusher.flush_count(), after_first_stop);
}

TEST(FlusherTest, EmptyPathSnapshotsWithoutAFile) {
  MetricRegistry registry;
  FlusherOptions options;
  options.interval_seconds = 0.02;
  options.poll_seconds = 0.005;
  MetricsFlusher flusher(options, &registry);
  ASSERT_TRUE(flusher.Start().ok());
  WaitForFlushes(flusher, 2);
  flusher.Stop();
  EXPECT_GE(flusher.flush_count(), 3u);
  EXPECT_TRUE(flusher.status().ok());
}

TEST(FlusherTest, GaugeDeltasCarryWindowEnvelope) {
  MetricRegistry registry;
  Gauge* depth = registry.GetGauge("briq.train.queue_depth");
  Gauge* threads = registry.GetGauge("briq.train.threads");
  threads->Set(4);  // set once, before the baseline flush
  const std::string path = TempPath("flusher_gauges");

  FlusherOptions options;
  options.interval_seconds = 0.05;
  options.poll_seconds = 0.005;
  options.path = path;
  MetricsFlusher flusher(options, &registry);
  ASSERT_TRUE(flusher.Start().ok());
  // Hold each value across several poll ticks so the window samples it.
  for (int64_t v : {int64_t{5}, int64_t{2}, int64_t{9}}) {
    depth->Set(v);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
  WaitForFlushes(flusher, 2);
  flusher.Stop();
  EXPECT_TRUE(flusher.status().ok());

  const std::vector<util::Json> records = ReadJsonl(path);
  bool saw_depth = false;
  int threads_reports = 0;
  double min_seen = 1e9;
  double max_seen = -1e9;
  double last_seen = -1.0;
  for (const util::Json& r : records) {
    const util::Json& gauges = r.at("delta").at("gauges");
    if (gauges.Has("briq.train.threads")) {
      ++threads_reports;
      EXPECT_EQ(gauges.at("briq.train.threads").at("last").AsDouble(), 4.0);
    }
    if (!gauges.Has("briq.train.queue_depth")) continue;
    saw_depth = true;
    const util::Json& g = gauges.at("briq.train.queue_depth");
    const double lo = g.at("min").AsDouble();
    const double hi = g.at("max").AsDouble();
    const double last = g.at("last").AsDouble();
    EXPECT_LE(lo, last);
    EXPECT_LE(last, hi);
    min_seen = std::min(min_seen, lo);
    max_seen = std::max(max_seen, hi);
    last_seen = last;
  }
  EXPECT_TRUE(saw_depth);
  // An unchanged gauge reports once (vs. the implicit prior of 0) and is
  // then omitted from every later delta.
  EXPECT_EQ(threads_reports, 1);
  // The poll-tick envelope saw the dip to 2 and the spike to 9 even
  // though both happened between flushes; the final report lands on 9.
  EXPECT_LE(min_seen, 2.0);
  EXPECT_GE(max_seen, 9.0);
  EXPECT_EQ(last_seen, 9.0);
  // The cumulative section still carries every gauge's current value.
  EXPECT_EQ(records.back()
                .at("cumulative")
                .at("gauges")
                .at("briq.train.queue_depth")
                .AsDouble(),
            9.0);
  fs::remove(path);
}

TEST(FlusherTest, StartFailsOnUnwritablePath) {
  MetricRegistry registry;
  FlusherOptions options;
  options.path = (fs::path(::testing::TempDir()) / "no_such_dir" /
                  std::to_string(::getpid()) / "f.jsonl")
                     .string();
  MetricsFlusher flusher(options, &registry);
  EXPECT_FALSE(flusher.Start().ok());
}

#else  // BRIQ_NO_METRICS

TEST(NoMetricsFlusherTest, StubStartsWithoutThreadOrFile) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) /
       ("flusher_stub-" + std::to_string(::getpid()) + ".jsonl"))
          .string();
  FlusherOptions options;
  options.path = path;
  MetricsFlusher flusher(options);
  ASSERT_TRUE(flusher.Start().ok());
  EXPECT_FALSE(flusher.Start().ok());  // still guards double-start
  flusher.Stop();
  EXPECT_EQ(flusher.flush_count(), 0u);
  EXPECT_TRUE(flusher.status().ok());
  // Inert means inert: no file appears even though a path was configured.
  EXPECT_FALSE(std::filesystem::exists(path));
}

#endif  // BRIQ_NO_METRICS

}  // namespace
}  // namespace briq::obs
