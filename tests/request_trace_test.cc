// Request-scoped trace propagation through the live server (DESIGN.md
// §5i): client trace IDs (or server-generated ones) must be echoed in
// X-Briq-Trace-Id, surface in Server-Timing stage entries, and tag the
// request's whole span tree in the TraceRing — under concurrent workers
// and clients, where mixing up two requests' identities would show as a
// wrong or missing tag. Runs under TSan via the serve_tsan sub-build.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "serve/http_client.h"
#include "serve/http_server.h"
#include "serve/router.h"

namespace briq::serve {
namespace {

bool LooksLikeGeneratedId(const std::string& id) {
  return id.size() == 16 &&
         std::all_of(id.begin(), id.end(), [](char c) {
           return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
         });
}

// A handler that opens a child span, so every request's tree has a stage
// below the server's "serve.request" root.
Router WorkRouter() {
  Router router;
  router.Handle("POST", "/work",
                [](const HttpRequest& request, RequestContext& context) {
                  obs::ScopedSpan span("work");
#ifndef BRIQ_NO_METRICS
                  // The ambient identity must match the request's context
                  // while the handler runs on this thread.
                  if (obs::CurrentTraceId() != context.trace_id) {
                    return HttpResponse::Text(500, "ambient id mismatch\n");
                  }
#endif
                  return HttpResponse::Text(200, request.body);
                });
  return router;
}

TEST(RequestTraceTest, ClientTraceIdsTagTheRingUnderConcurrency) {
  obs::TraceRing::Global().Clear();

  HttpServerOptions options;
  options.num_threads = 4;
  HttpServer server(WorkRouter(), options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 8;  // 32 roots, well under the ring's 256
  std::mutex mu;
  std::vector<std::string> failures;
  std::set<std::string> sent_ids;
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = HttpClient::Connect(server.port());
      if (!client.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        failures.push_back("connect: " + client.status().ToString());
        return;
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const std::string id =
            "c" + std::to_string(c) + "-r" + std::to_string(i);
        auto response = client->Request("POST", "/work", "payload",
                                        {{"X-Briq-Trace-Id", id}});
        std::lock_guard<std::mutex> lock(mu);
        if (!response.ok() || response->status != 200) {
          failures.push_back(id + ": bad response");
          continue;
        }
        if (response->Header("x-briq-trace-id") != id) {
          failures.push_back(id + ": echo was " +
                             response->Header("x-briq-trace-id"));
          continue;
        }
        sent_ids.insert(id);
      }
    });
  }
  for (auto& t : threads) t.join();
  server.Stop();
  ASSERT_TRUE(failures.empty()) << failures.front();
  ASSERT_EQ(sent_ids.size(),
            static_cast<size_t>(kClients) * kRequestsPerClient);

#ifndef BRIQ_NO_METRICS
  // Every request's root span must be in the ring, tagged with exactly the
  // id its client sent, and carrying the handler's child span.
  std::set<std::string> ring_ids;
  for (const obs::SpanNode& root : obs::TraceRing::Global().Snapshot()) {
    if (root.name != "serve.request") continue;
    EXPECT_TRUE(sent_ids.count(root.trace_id))
        << "root tagged with unknown id \"" << root.trace_id << "\"";
    EXPECT_FALSE(ring_ids.count(root.trace_id))
        << "id " << root.trace_id << " tagged two roots";
    ring_ids.insert(root.trace_id);
    ASSERT_EQ(root.children.size(), 1u);
    EXPECT_EQ(root.children[0].name, "work");
  }
  EXPECT_EQ(ring_ids, sent_ids);
#endif  // BRIQ_NO_METRICS
}

TEST(RequestTraceTest, MissingOrInvalidIdsGetAGeneratedOne) {
  obs::TraceRing::Global().Clear();

  HttpServerOptions options;
  options.num_threads = 2;
  HttpServer server(WorkRouter(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = HttpClient::Connect(server.port());
  ASSERT_TRUE(client.ok());

  auto missing = client->Request("POST", "/work", "x");
  ASSERT_TRUE(missing.ok());
  ASSERT_EQ(missing->status, 200);
  const std::string generated = missing->Header("x-briq-trace-id");
  EXPECT_TRUE(LooksLikeGeneratedId(generated)) << generated;

  // Whitespace makes the id invalid; the server must mint a fresh one
  // rather than echoing attacker-controlled bytes into headers and logs.
  auto invalid = client->Request("POST", "/work", "x",
                                 {{"X-Briq-Trace-Id", "bad id"}});
  ASSERT_TRUE(invalid.ok());
  ASSERT_EQ(invalid->status, 200);
  const std::string replaced = invalid->Header("x-briq-trace-id");
  EXPECT_TRUE(LooksLikeGeneratedId(replaced)) << replaced;
  EXPECT_NE(replaced, "bad id");
  EXPECT_NE(replaced, generated);
  server.Stop();
}

TEST(RequestTraceTest, ServerTimingCarriesQueueAppAndStageEntries) {
  obs::TraceRing::Global().Clear();

  HttpServerOptions options;
  options.num_threads = 1;
  HttpServer server(WorkRouter(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = HttpClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto response = client->Request("POST", "/work", "x");
  ASSERT_TRUE(response.ok());
  const std::string timing = response->Header("server-timing");
  EXPECT_NE(timing.find("queue;dur="), std::string::npos) << timing;
  EXPECT_NE(timing.find("app;dur="), std::string::npos) << timing;
#ifndef BRIQ_NO_METRICS
  // The handler's "work" span surfaces as a per-stage entry. (Stage spans
  // are no-ops in the BRIQ_NO_METRICS build.)
  EXPECT_NE(timing.find("work;dur="), std::string::npos) << timing;
#endif
  server.Stop();
}

}  // namespace
}  // namespace briq::serve
