// End-to-end parity contract of the classification fast path
// (DESIGN.md §5g): the flat-forest scoring route and the candidate
// pre-index are pure performance features. Alignments must be
// byte-identical — same decisions, same exact-double scores — across
// {legacy, flat forest, flat forest + pre-index}, across the in-memory
// Align / AlignBatch paths and the streaming path, at 1 and 4 threads.
// Run under BRIQ_SANITIZE=thread this also checks the lazy feature caches
// and the shared compiled forest for data races.

#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/streaming_aligner.h"
#include "corpus/generator.h"
#include "util/result.h"

namespace briq {
namespace {

using core::BriqConfig;
using core::BriqSystem;
using core::DocumentAlignment;
using core::PreparedDocument;
using core::StreamingOptions;

void ExpectAlignmentsIdentical(const DocumentAlignment& a,
                               const DocumentAlignment& b,
                               const std::string& context) {
  ASSERT_EQ(a.decisions.size(), b.decisions.size()) << context;
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].text_idx, b.decisions[i].text_idx) << context;
    EXPECT_EQ(a.decisions[i].table_idx, b.decisions[i].table_idx) << context;
    // Exact double equality: the fast path must not move a bit.
    EXPECT_EQ(a.decisions[i].score, b.decisions[i].score) << context;
  }
}

class ClassifyParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::CorpusOptions options;
    options.num_documents = 50;
    options.seed = 20260;
    corpus_ = new corpus::Corpus(corpus::GenerateCorpus(options));

    BriqConfig config;
    system_ = new BriqSystem(config);
    std::vector<PreparedDocument> train_docs;
    for (size_t i = 0; i < 30; ++i) {
      train_docs.push_back(
          core::PrepareDocument(corpus_->documents[i], config));
    }
    std::vector<const PreparedDocument*> train;
    for (const auto& d : train_docs) train.push_back(&d);
    ASSERT_TRUE(system_->Train(train).ok());

    eval_docs_ = new std::vector<corpus::Document>(
        corpus_->documents.begin() + 30, corpus_->documents.end());
    prepared_ = new std::vector<PreparedDocument>();
    for (const corpus::Document& d : *eval_docs_) {
      prepared_->push_back(core::PrepareDocument(d, system_->config()));
    }

    // Reference: the legacy route — pointer-chasing RandomForest, no
    // candidate pre-index — single-threaded.
    system_->mutable_config()->flat_forest = false;
    system_->mutable_config()->candidate_index = false;
    expected_ = new std::vector<DocumentAlignment>();
    for (const PreparedDocument& d : *prepared_) {
      expected_->push_back(system_->Align(d));
    }
    // The generated corpus must actually exercise the classifier, or this
    // test proves nothing.
    size_t total_decisions = 0;
    for (const auto& a : *expected_) total_decisions += a.decisions.size();
    ASSERT_GT(total_decisions, 0u);
  }

  static void TearDownTestSuite() {
    delete expected_;
    delete prepared_;
    delete eval_docs_;
    delete system_;
    delete corpus_;
  }

  struct Mode {
    bool flat_forest;
    bool candidate_index;
    const char* name;
  };
  static constexpr Mode kModes[] = {
      {false, false, "legacy"},
      {true, false, "flat"},
      {true, true, "flat+index"},
  };

  static void SetMode(const Mode& mode) {
    system_->mutable_config()->flat_forest = mode.flat_forest;
    system_->mutable_config()->candidate_index = mode.candidate_index;
  }

  static corpus::Corpus* corpus_;
  static BriqSystem* system_;
  static std::vector<corpus::Document>* eval_docs_;
  static std::vector<PreparedDocument>* prepared_;
  static std::vector<DocumentAlignment>* expected_;
};

corpus::Corpus* ClassifyParityTest::corpus_ = nullptr;
BriqSystem* ClassifyParityTest::system_ = nullptr;
std::vector<corpus::Document>* ClassifyParityTest::eval_docs_ = nullptr;
std::vector<PreparedDocument>* ClassifyParityTest::prepared_ = nullptr;
std::vector<DocumentAlignment>* ClassifyParityTest::expected_ = nullptr;
constexpr ClassifyParityTest::Mode ClassifyParityTest::kModes[];

TEST_F(ClassifyParityTest, MemoryAlignMatchesLegacyAcrossModes) {
  for (const Mode& mode : kModes) {
    SetMode(mode);
    for (size_t i = 0; i < prepared_->size(); ++i) {
      ExpectAlignmentsIdentical(
          system_->Align((*prepared_)[i]), (*expected_)[i],
          std::string(mode.name) + " Align doc " + std::to_string(i));
    }
  }
}

TEST_F(ClassifyParityTest, MemoryAlignBatchMatchesLegacyAcrossModesAndThreads) {
  std::vector<const PreparedDocument*> batch;
  for (const auto& d : *prepared_) batch.push_back(&d);
  for (const Mode& mode : kModes) {
    SetMode(mode);
    for (int threads : {1, 4}) {
      const std::string context = std::string(mode.name) + " AlignBatch threads=" +
                                  std::to_string(threads);
      std::vector<DocumentAlignment> got = system_->AlignBatch(batch, threads);
      ASSERT_EQ(got.size(), expected_->size()) << context;
      for (size_t i = 0; i < got.size(); ++i) {
        ExpectAlignmentsIdentical(got[i], (*expected_)[i],
                                  context + " doc " + std::to_string(i));
      }
    }
  }
}

TEST_F(ClassifyParityTest, StreamingMatchesLegacyAcrossModesAndThreads) {
  for (const Mode& mode : kModes) {
    SetMode(mode);
    for (int threads : {1, 4}) {
      const std::string context = std::string(mode.name) +
                                  " stream threads=" + std::to_string(threads);
      StreamingOptions options;
      options.num_threads = threads;
      options.queue_capacity = 2;
      options.chunk_docs = 3;  // not a divisor of the corpus: tail chunk
      core::StreamingAligner streaming(system_, &system_->config(), options);
      size_t cursor = 0;
      std::vector<DocumentAlignment> streamed;
      util::Status status = streaming.Run(
          [&]() -> util::Result<std::optional<corpus::Document>> {
            if (cursor >= eval_docs_->size()) {
              return std::optional<corpus::Document>();
            }
            return std::optional<corpus::Document>((*eval_docs_)[cursor++]);
          },
          [&](size_t doc_index, const corpus::Document&,
              const DocumentAlignment& a) {
            EXPECT_EQ(doc_index, streamed.size()) << context;
            streamed.push_back(a);
          });
      ASSERT_TRUE(status.ok()) << context << ": " << status.ToString();
      ASSERT_EQ(streamed.size(), expected_->size()) << context;
      for (size_t i = 0; i < streamed.size(); ++i) {
        ExpectAlignmentsIdentical(streamed[i], (*expected_)[i],
                                  context + " doc " + std::to_string(i));
      }
    }
  }
}

}  // namespace
}  // namespace briq
