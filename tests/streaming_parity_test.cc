// Determinism guarantee of the streaming ingestion path: pulling a
// sharded corpus through core::StreamingAligner must produce bit-identical
// DocumentAlignments to the in-memory Aligner::AlignBatch path, for every
// shard size and thread count, and must deliver them in document order.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/streaming_aligner.h"
#include "corpus/generator.h"
#include "corpus/shard_io.h"
#include "obs/metrics.h"

namespace briq {
namespace {

namespace fs = std::filesystem;

using core::AlignShardedCorpus;
using core::BriqConfig;
using core::BriqSystem;
using core::DocumentAlignment;
using core::PreparedDocument;
using core::StreamingOptions;

void ExpectAlignmentsIdentical(const DocumentAlignment& a,
                               const DocumentAlignment& b,
                               const std::string& context) {
  ASSERT_EQ(a.decisions.size(), b.decisions.size()) << context;
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].text_idx, b.decisions[i].text_idx) << context;
    EXPECT_EQ(a.decisions[i].table_idx, b.decisions[i].table_idx) << context;
    // Exact double equality: the streaming path must not perturb a bit.
    EXPECT_EQ(a.decisions[i].score, b.decisions[i].score) << context;
  }
}

class StreamingParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::CorpusOptions options;
    options.num_documents = 60;
    options.seed = 4711;
    corpus::Corpus full = corpus::GenerateCorpus(options);

    config_ = new BriqConfig();
    // Train on the first 40 documents; the remaining 20 are the corpus
    // that is streamed and batch-aligned below.
    std::vector<PreparedDocument> train_docs;
    std::vector<const PreparedDocument*> train;
    for (size_t i = 0; i < 40; ++i) {
      train_docs.push_back(
          core::PrepareDocument(full.documents[i], *config_));
    }
    for (const auto& d : train_docs) train.push_back(&d);
    system_ = new BriqSystem(*config_);
    ASSERT_TRUE(system_->Train(train).ok());

    stream_corpus_ = new corpus::Corpus();
    for (size_t i = 40; i < full.documents.size(); ++i) {
      stream_corpus_->documents.push_back(std::move(full.documents[i]));
    }

    // Reference alignments via the in-memory path, computed on the same
    // bytes the streaming path will read: write shards once, load them
    // back, AlignBatch the loaded documents. The directory is keyed by pid:
    // ctest runs every TEST_F as its own process (gtest_discover_tests), so
    // a shared path would let one process's TearDownTestSuite delete the
    // shards under a concurrently running sibling.
    dir_ = new std::string(
        (fs::path(::testing::TempDir()) /
         ("streaming_parity-" + std::to_string(::getpid())))
            .string());
    fs::remove_all(*dir_);
    fs::create_directories(*dir_);
    ASSERT_TRUE(corpus::WriteCorpusShards(*stream_corpus_, *dir_, "ref",
                                          /*shard_size=*/6)
                    .ok());
    auto loaded = corpus::LoadShardedCorpus(*dir_, "ref");
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_EQ(loaded->size(), stream_corpus_->size());

    loaded_prepared_ = new std::vector<PreparedDocument>();
    for (const corpus::Document& d : loaded->documents) {
      loaded_prepared_->push_back(core::PrepareDocument(d, *config_));
    }
    std::vector<const PreparedDocument*> batch;
    for (const auto& d : *loaded_prepared_) batch.push_back(&d);
    expected_ = new std::vector<DocumentAlignment>(
        system_->AlignBatch(batch, /*num_threads=*/1));
  }

  static void TearDownTestSuite() {
    fs::remove_all(*dir_);
    delete expected_;
    delete loaded_prepared_;
    delete dir_;
    delete stream_corpus_;
    delete system_;
    delete config_;
  }

  static BriqConfig* config_;
  static BriqSystem* system_;
  static corpus::Corpus* stream_corpus_;
  static std::string* dir_;
  static std::vector<PreparedDocument>* loaded_prepared_;
  static std::vector<DocumentAlignment>* expected_;
};

BriqConfig* StreamingParityTest::config_ = nullptr;
BriqSystem* StreamingParityTest::system_ = nullptr;
corpus::Corpus* StreamingParityTest::stream_corpus_ = nullptr;
std::string* StreamingParityTest::dir_ = nullptr;
std::vector<PreparedDocument>* StreamingParityTest::loaded_prepared_ =
    nullptr;
std::vector<DocumentAlignment>* StreamingParityTest::expected_ = nullptr;

TEST_F(StreamingParityTest, SerializationRoundTripPreservesAlignments) {
  // The shard round trip itself must not move a bit: aligning the
  // original in-memory documents equals aligning the reloaded ones.
  std::vector<PreparedDocument> original_prepared;
  for (const corpus::Document& d : stream_corpus_->documents) {
    original_prepared.push_back(core::PrepareDocument(d, *config_));
  }
  ASSERT_EQ(original_prepared.size(), expected_->size());
  for (size_t i = 0; i < original_prepared.size(); ++i) {
    ExpectAlignmentsIdentical(system_->Align(original_prepared[i]),
                              (*expected_)[i],
                              "round-trip doc " + std::to_string(i));
  }
}

TEST_F(StreamingParityTest, StreamingMatchesInMemoryAcrossShardSizesAndThreads) {
  const size_t whole = stream_corpus_->size();
  for (size_t shard_size : {size_t{1}, size_t{7}, whole}) {
    const std::string dir = *dir_ + "/s" + std::to_string(shard_size);
    fs::create_directories(dir);
    ASSERT_TRUE(corpus::WriteCorpusShards(*stream_corpus_, dir, "corpus",
                                          shard_size)
                    .ok());
    for (int threads : {1, 4}) {
      const std::string context = "shard_size=" + std::to_string(shard_size) +
                                  " threads=" + std::to_string(threads);
      StreamingOptions options;
      options.num_threads = threads;
      options.queue_capacity = 5;  // smaller than the corpus: forces
                                   // back-pressure and reordering
      std::vector<DocumentAlignment> streamed;
      std::vector<std::string> ids;
      util::Status status = AlignShardedCorpus(
          *system_, *config_, dir, "corpus", options,
          [&](size_t doc_index, const corpus::Document& doc,
              const DocumentAlignment& alignment) {
            EXPECT_EQ(doc_index, streamed.size()) << context;
            streamed.push_back(alignment);
            ids.push_back(doc.id);
          });
      ASSERT_TRUE(status.ok()) << context << ": " << status.ToString();
      ASSERT_EQ(streamed.size(), expected_->size()) << context;
      for (size_t i = 0; i < streamed.size(); ++i) {
        EXPECT_EQ(ids[i], stream_corpus_->documents[i].id) << context;
        ExpectAlignmentsIdentical(streamed[i], (*expected_)[i],
                                  context + " doc " + std::to_string(i));
      }
    }
  }
}

TEST_F(StreamingParityTest, InMemorySourceStreamsIdentically) {
  // StreamingAligner is format-agnostic: a plain vector source must give
  // the same results as the sharded reader.
  core::StreamingAligner streaming(system_, config_,
                                   {/*num_threads=*/4, /*queue_capacity=*/3});
  // Feed copies of the reloaded documents (same bytes as expected_).
  auto loaded = corpus::LoadShardedCorpus(*dir_, "ref");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  size_t cursor = 0;
  std::vector<DocumentAlignment> streamed;
  util::Status status = streaming.Run(
      [&]() -> util::Result<std::optional<corpus::Document>> {
        if (cursor >= loaded->documents.size()) {
          return std::optional<corpus::Document>();
        }
        return std::optional<corpus::Document>(loaded->documents[cursor++]);
      },
      [&](size_t, const corpus::Document&, const DocumentAlignment& a) {
        streamed.push_back(a);
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(streamed.size(), expected_->size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    ExpectAlignmentsIdentical(streamed[i], (*expected_)[i],
                              "vector source doc " + std::to_string(i));
  }
}

#ifndef BRIQ_NO_METRICS
// Names of the instruments a path touched between two snapshots, filtered
// to the pipeline-stage prefixes (stream/shard telemetry differs between
// the two paths by design).
std::set<std::string> TouchedAlignInstruments(
    const obs::MetricsSnapshot& before, const obs::MetricsSnapshot& after) {
  const auto relevant = [](const std::string& name) {
    return name.rfind("briq.align.", 0) == 0 ||
           name.rfind("briq.filter.", 0) == 0 ||
           name.rfind("briq.rwr.", 0) == 0;
  };
  std::set<std::string> touched;
  for (const auto& [name, value] : after.counters) {
    if (!relevant(name)) continue;
    auto it = before.counters.find(name);
    if (it == before.counters.end() || it->second != value) {
      touched.insert(name);
    }
  }
  for (const auto& [name, histogram] : after.histograms) {
    if (!relevant(name)) continue;
    auto it = before.histograms.find(name);
    if (it == before.histograms.end() ||
        it->second.count != histogram.count) {
      touched.insert(name);
    }
  }
  return touched;
}

TEST_F(StreamingParityTest, MetricShapeMatchesInMemoryPath) {
  // Observability parity: the streaming and in-memory paths must light up
  // the same set of pipeline-stage instruments (same names), so a
  // dashboard built on one path reads the other unchanged.
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();

  // Load a fresh copy of the corpus: the fixture's loaded_prepared_ holds
  // non-owning source pointers into a corpus that died with SetUpTestSuite,
  // and the in-memory leg below must prepare documents itself anyway so
  // that both legs exercise the full prepare->filter->resolve sequence.
  auto loaded = corpus::LoadShardedCorpus(*dir_, "ref");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const obs::MetricsSnapshot s0 = registry.Snapshot();
  for (const corpus::Document& d : loaded->documents) {
    system_->Align(core::PrepareDocument(d, *config_));
  }
  const obs::MetricsSnapshot s1 = registry.Snapshot();
  util::Status status = AlignShardedCorpus(
      *system_, *config_, *dir_, "ref", StreamingOptions{2, 4},
      [](size_t, const corpus::Document&, const DocumentAlignment&) {});
  ASSERT_TRUE(status.ok()) << status.ToString();
  const obs::MetricsSnapshot s2 = registry.Snapshot();

  const std::set<std::string> memory_path = TouchedAlignInstruments(s0, s1);
  const std::set<std::string> stream_path = TouchedAlignInstruments(s1, s2);
  EXPECT_FALSE(memory_path.empty());
  EXPECT_EQ(memory_path, stream_path);

  // Both paths count the same number of documents through every stage.
  const uint64_t docs_mem = s1.counters.at("briq.align.documents") -
                            s0.counters.at("briq.align.documents");
  const uint64_t docs_stream = s2.counters.at("briq.align.documents") -
                               s1.counters.at("briq.align.documents");
  EXPECT_EQ(docs_mem, loaded_prepared_->size());
  EXPECT_EQ(docs_stream, loaded_prepared_->size());
}

TEST_F(StreamingParityTest, QueueGaugesReturnToZeroAfterRun) {
  util::Status status = AlignShardedCorpus(
      *system_, *config_, *dir_, "ref", StreamingOptions{4, 3},
      [](size_t, const corpus::Document&, const DocumentAlignment&) {});
  ASSERT_TRUE(status.ok()) << status.ToString();
  const obs::MetricsSnapshot s = obs::MetricRegistry::Global().Snapshot();
  // Depth gauges drain to zero once the run completes; the peaks retain
  // the run's high-water marks as the persistent evidence of activity.
  EXPECT_EQ(s.gauges.at("briq.stream.queue_depth"), 0);
  EXPECT_EQ(s.gauges.at("briq.stream.reorder_buffered"), 0);
  EXPECT_GE(s.gauges.at("briq.stream.queue_depth_peak"), 1);
  EXPECT_GE(s.counters.at("briq.stream.documents"),
            loaded_prepared_->size());
  EXPECT_GE(s.histograms.at("briq.shard.parse_seconds").count,
            loaded_prepared_->size());
}
#endif  // BRIQ_NO_METRICS

TEST_F(StreamingParityTest, SourceErrorAbortsWithPartialOrderedResults) {
  size_t cursor = 0;
  std::vector<size_t> emitted;
  core::StreamingAligner streaming(system_, config_,
                                   {/*num_threads=*/4, /*queue_capacity=*/2});
  util::Status status = streaming.Run(
      [&]() -> util::Result<std::optional<corpus::Document>> {
        if (cursor >= 5) {
          return util::Status::ParseError("injected source failure");
        }
        return std::optional<corpus::Document>(
            stream_corpus_->documents[cursor++]);
      },
      [&](size_t doc_index, const corpus::Document&,
          const DocumentAlignment&) { emitted.push_back(doc_index); });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kParseError);
  // Everything read before the failure is still delivered, in order.
  ASSERT_EQ(emitted.size(), 5u);
  for (size_t i = 0; i < emitted.size(); ++i) EXPECT_EQ(emitted[i], i);
}

}  // namespace
}  // namespace briq
