#include "core/extraction.h"

#include <gtest/gtest.h>

#include "core/gt_matching.h"
#include "corpus/paper_examples.h"
#include "html/page_segmenter.h"

namespace briq::core {
namespace {

TEST(ContextTokensTest, WordsAndNumbersLowercased) {
  EXPECT_EQ(ContextTokens("Total Revenue 2013 was $3,263"),
            (std::vector<std::string>{"total", "revenue", "2013", "was",
                                      "3,263"}));
}

TEST(PrepareDocumentTest, ExtractsBothSides) {
  corpus::Document doc = corpus::Figure1aHealth();
  BriqConfig config;
  PreparedDocument prepared = PrepareDocument(doc, config);

  // Text side: 123, 69, 54, 38, 5 (years/headings filtered out).
  EXPECT_EQ(prepared.text_mentions.size(), 5u);
  // Table side: 15 single cells + virtual cells.
  EXPECT_EQ(prepared.vc_stats.single_cells, 15u);
  EXPECT_GT(prepared.vc_stats.virtual_total(), 0u);
  EXPECT_EQ(prepared.table_mentions.size(),
            prepared.vc_stats.single_cells +
                prepared.vc_stats.virtual_total() -
                prepared.vc_stats.skipped_degenerate);
}

TEST(PrepareDocumentTest, MentionPositionsFilled) {
  corpus::Document doc = corpus::Figure1aHealth();
  BriqConfig config;
  PreparedDocument prepared = PrepareDocument(doc, config);
  for (const table::TextMention& m : prepared.text_mentions) {
    EXPECT_EQ(m.paragraph, 0);
    ASSERT_LT(m.token_pos, prepared.paragraph_tokens[0].size());
    // The token at token_pos overlaps the mention span.
    EXPECT_TRUE(prepared.paragraph_tokens[0][m.token_pos].span.Overlaps(
        m.q.span));
  }
}

TEST(PrepareDocumentTest, ContextCachesPopulated) {
  corpus::Document doc = corpus::Figure1cFinance();
  BriqConfig config;
  PreparedDocument prepared = PrepareDocument(doc, config);
  ASSERT_EQ(prepared.table_contexts.size(), 1u);
  const auto& ctx = prepared.table_contexts[0];
  EXPECT_FALSE(ctx.all_words.empty());
  EXPECT_FALSE(ctx.all_phrases.empty());
  ASSERT_EQ(ctx.row_words.size(), 5u);
  // Row 1 context contains its header and the column headers.
  auto has = [](const std::vector<std::string>& v, const std::string& w) {
    return std::find(v.begin(), v.end(), w) != v.end();
  };
  EXPECT_TRUE(has(ctx.row_words[1], "revenue"));
  // Column headers live in the *column* context, not the row's.
  EXPECT_FALSE(has(ctx.row_words[1], "2013"));
  EXPECT_TRUE(has(ctx.col_words[1], "2013"));
}

TEST(GtMatchingTest, AllFigure1aTargetsResolve) {
  corpus::Document doc = corpus::Figure1aHealth();
  BriqConfig config;
  PreparedDocument prepared = PrepareDocument(doc, config);
  auto matched = MatchGroundTruth(prepared);
  ASSERT_EQ(matched.size(), 5u);
  for (const auto& m : matched) {
    EXPECT_GE(m.text_idx, 0) << m.gt->surface;
    EXPECT_GE(m.table_idx, 0) << m.gt->surface;
  }
}

TEST(GtMatchingTest, UnresolvableTargetReportsMinusOne) {
  corpus::Document doc = corpus::Figure1aHealth();
  // Point one annotation at a bogus cell set that no generator produces.
  doc.ground_truth[0].target.cells = {{1, 1}, {2, 2}};  // cross-diagonal
  doc.ground_truth[0].target.func = table::AggregateFunction::kDiff;
  BriqConfig config;
  PreparedDocument prepared = PrepareDocument(doc, config);
  auto matched = MatchGroundTruth(prepared);
  EXPECT_EQ(matched[0].table_idx, -1);
  EXPECT_GE(matched[0].text_idx, 0);
}

TEST(BuildDocumentsFromPageTest, ParagraphsPairWithRelatedTables) {
  // Two topics on one page; each paragraph should pick up its own table.
  std::string html =
      "<html><body>"
      "<p>Depression was reported by 38 patients during the drug trials "
      "with side effects like rash and nausea.</p>"
      "<table><tr><th>side effects</th><th>total</th></tr>"
      "<tr><td>Rash</td><td>35</td></tr>"
      "<tr><td>Depression</td><td>38</td></tr>"
      "<tr><td>Nausea</td><td>11</td></tr></table>"
      "<p>Total revenue reached 3,263 in fiscal 2013 while income taxes "
      "were 179.</p>"
      "<table><tr><th>Income</th><th>2013</th></tr>"
      "<tr><td>Total Revenue</td><td>3,263</td></tr>"
      "<tr><td>Income taxes</td><td>179</td></tr></table>"
      "</body></html>";
  html::Page page = html::SegmentPage(html);
  ASSERT_EQ(page.TableCount(), 2u);

  auto docs = BuildDocumentsFromPage(page, /*similarity_threshold=*/0.12);
  ASSERT_EQ(docs.size(), 2u);
  // Health paragraph pairs with the side-effects table.
  ASSERT_FALSE(docs[0].tables.empty());
  EXPECT_EQ(docs[0].tables[0].cell(1, 0).raw, "Rash");
  ASSERT_FALSE(docs[1].tables.empty());
  EXPECT_EQ(docs[1].tables[0].cell(1, 0).raw, "Total Revenue");
}

TEST(BuildDocumentsFromPageTest, UnrelatedParagraphYieldsNoDocument) {
  std::string html =
      "<html><body>"
      "<p>Completely unrelated musings about weather and poetry.</p>"
      "<table><tr><th>x</th><th>y</th></tr><tr><td>1</td><td>2</td></tr>"
      "</table></body></html>";
  html::Page page = html::SegmentPage(html);
  auto docs = BuildDocumentsFromPage(page, /*similarity_threshold=*/0.2);
  EXPECT_TRUE(docs.empty());
}

}  // namespace
}  // namespace briq::core
