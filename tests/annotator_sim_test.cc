#include "corpus/annotator_sim.h"

#include <gtest/gtest.h>

#include "corpus/generator.h"

namespace briq::corpus {
namespace {

TEST(FleissKappaTest, PerfectAgreementIsOne) {
  // 4 subjects, 3 categories, 5 raters all agreeing.
  std::vector<std::vector<int>> ratings = {
      {5, 0, 0}, {0, 5, 0}, {0, 0, 5}, {5, 0, 0}};
  EXPECT_NEAR(FleissKappa(ratings), 1.0, 1e-9);
}

TEST(FleissKappaTest, WikipediaReferenceValue) {
  // The classic worked example (Fleiss 1971 / Wikipedia): kappa = 0.210.
  std::vector<std::vector<int>> ratings = {
      {0, 0, 0, 0, 14}, {0, 2, 6, 4, 2}, {0, 0, 3, 5, 6},
      {0, 3, 9, 2, 0},  {2, 2, 8, 1, 1}, {7, 7, 0, 0, 0},
      {3, 2, 6, 3, 0},  {2, 5, 3, 2, 2}, {6, 5, 2, 1, 0},
      {0, 2, 2, 3, 7}};
  EXPECT_NEAR(FleissKappa(ratings), 0.210, 1e-3);
}

TEST(FleissKappaTest, UniformDisagreementNearZero) {
  // Every rater picks a different category at random-ish: kappa <= 0.
  std::vector<std::vector<int>> ratings = {
      {1, 1, 1}, {1, 1, 1}, {1, 1, 1}, {1, 1, 1}};
  EXPECT_LE(FleissKappa(ratings), 0.0 + 1e-9);
}

TEST(SimulateAnnotationTest, KeepsMostPairsAtLowErrorRate) {
  CorpusOptions options;
  options.num_documents = 60;
  options.seed = 8;
  Corpus corpus = GenerateCorpus(options);

  AnnotatorSimOptions sim;
  sim.error_rate = 0.05;
  AnnotationOutcome outcome = SimulateAnnotation(corpus, sim);
  EXPECT_GT(outcome.pairs_kept, 0u);
  double kept_frac = static_cast<double>(outcome.pairs_kept) /
                     (outcome.pairs_kept + outcome.pairs_dropped);
  EXPECT_GT(kept_frac, 0.95);
  EXPECT_GT(outcome.fleiss_kappa, 0.8);
}

TEST(SimulateAnnotationTest, DefaultErrorRateLandsNearPaperKappa) {
  CorpusOptions options;
  options.num_documents = 100;
  options.seed = 9;
  Corpus corpus = GenerateCorpus(options);
  AnnotationOutcome outcome = SimulateAnnotation(corpus);
  // Paper: Fleiss' kappa = 0.6854 ("substantial agreement").
  EXPECT_GT(outcome.fleiss_kappa, 0.55);
  EXPECT_LT(outcome.fleiss_kappa, 0.82);
}

TEST(SimulateAnnotationTest, HighErrorRateDropsPairsAndKappa) {
  CorpusOptions options;
  options.num_documents = 40;
  options.seed = 10;
  Corpus corpus = GenerateCorpus(options);

  AnnotatorSimOptions noisy;
  noisy.error_rate = 0.75;
  AnnotationOutcome outcome = SimulateAnnotation(corpus, noisy);
  EXPECT_GT(outcome.pairs_dropped, 0u);
  EXPECT_LT(outcome.fleiss_kappa, 0.2);
}

TEST(SimulateAnnotationTest, AnnotatedCorpusFiltersGroundTruth) {
  CorpusOptions options;
  options.num_documents = 30;
  options.seed = 11;
  Corpus corpus = GenerateCorpus(options);

  AnnotatorSimOptions sim;
  sim.error_rate = 0.4;
  AnnotationOutcome outcome = SimulateAnnotation(corpus, sim);
  size_t original_gt = 0;
  size_t kept_gt = 0;
  for (size_t i = 0; i < corpus.size(); ++i) {
    original_gt += corpus.documents[i].ground_truth.size();
    kept_gt += outcome.annotated.documents[i].ground_truth.size();
  }
  EXPECT_LT(kept_gt, original_gt);
  EXPECT_EQ(kept_gt, outcome.pairs_kept);
}

}  // namespace
}  // namespace briq::corpus
