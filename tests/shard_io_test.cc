// Round-trip and fault-injection tests of the briq-shard-v1 format
// (corpus/shard_io.h): a generated corpus written to shards and read back
// must deep-equal the original, and every corrupted-input case — truncated
// shard, flipped content bytes, missing shard file, empty shard — must
// surface as a descriptive util::Status instead of a crash.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "corpus/serialization.h"
#include "corpus/shard_io.h"

namespace briq::corpus {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test case.
class ShardIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("shard_io_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override { fs::remove_all(dir_); }

  std::string Dir() const { return dir_.string(); }

  fs::path dir_;
};

Corpus SmallCorpus(size_t num_documents = 23, uint64_t seed = 99) {
  CorpusOptions options;
  options.num_documents = num_documents;
  options.seed = seed;
  return GenerateCorpus(options);
}

std::string CorpusFingerprint(const Corpus& corpus) {
  return CorpusToJson(corpus).Dump(/*indent=*/-1);
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void WriteLines(const std::string& path,
                const std::vector<std::string>& lines) {
  std::ofstream out(path);
  for (const std::string& line : lines) out << line << "\n";
}

util::Result<std::vector<Document>> ReadWholeShard(const std::string& path) {
  BRIQ_ASSIGN_OR_RETURN(ShardReader reader, ShardReader::Open(path));
  std::vector<Document> docs;
  while (true) {
    BRIQ_ASSIGN_OR_RETURN(std::optional<Document> doc, reader.Next());
    if (!doc.has_value()) return docs;
    docs.push_back(std::move(*doc));
  }
}

// --- Round trip -------------------------------------------------------------

TEST_F(ShardIoTest, RoundTripAcrossShardSizes) {
  const Corpus corpus = SmallCorpus();
  const std::string fingerprint = CorpusFingerprint(corpus);
  for (size_t shard_size : {1u, 5u, 7u, 23u, 100u}) {
    const std::string dir = Dir() + "/s" + std::to_string(shard_size);
    fs::create_directories(dir);
    auto paths = WriteCorpusShards(corpus, dir, "corpus", shard_size);
    ASSERT_TRUE(paths.ok()) << paths.status().ToString();
    const size_t expected_shards =
        (corpus.size() + shard_size - 1) / shard_size;
    EXPECT_EQ(paths->size(), expected_shards) << "shard_size " << shard_size;

    auto loaded = LoadShardedCorpus(dir, "corpus");
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->size(), corpus.size());
    EXPECT_EQ(CorpusFingerprint(*loaded), fingerprint)
        << "shard_size " << shard_size;
  }
}

TEST_F(ShardIoTest, HeadersDescribeShardPositions) {
  const Corpus corpus = SmallCorpus(/*num_documents=*/10);
  auto paths = WriteCorpusShards(corpus, Dir(), "corpus", /*shard_size=*/4);
  ASSERT_TRUE(paths.ok()) << paths.status().ToString();
  ASSERT_EQ(paths->size(), 3u);  // 4 + 4 + 2

  size_t offset = 0;
  for (size_t k = 0; k < paths->size(); ++k) {
    auto reader = ShardReader::Open((*paths)[k]);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_EQ(reader->header().shard_index, static_cast<int>(k));
    EXPECT_EQ(reader->header().first_document_index, offset);
    EXPECT_EQ(reader->header().num_documents, k < 2 ? 4u : 2u);
    offset += reader->header().num_documents;
  }
}

TEST_F(ShardIoTest, WriterRejectsAddAfterFinish) {
  const Corpus corpus = SmallCorpus(/*num_documents=*/2);
  ShardWriter writer(Dir(), "corpus", /*shard_size=*/8);
  ASSERT_TRUE(writer.Add(corpus.documents[0]).ok());
  ASSERT_TRUE(writer.Finish().ok());
  ASSERT_TRUE(writer.Finish().ok());  // idempotent
  util::Status status = writer.Add(corpus.documents[1]);
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(ShardIoTest, StreamingReaderYieldsGlobalDocumentOrder) {
  const Corpus corpus = SmallCorpus(/*num_documents=*/9);
  ASSERT_TRUE(
      WriteCorpusShards(corpus, Dir(), "corpus", /*shard_size=*/2).ok());
  auto reader = ShardedCorpusReader::Open(Dir(), "corpus");
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->num_shards(), 5u);
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(reader->next_document_index(), i);
    auto doc = reader->Next();
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    ASSERT_TRUE(doc->has_value());
    EXPECT_EQ((*doc)->id, corpus.documents[i].id);
  }
  auto end = reader->Next();
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end->has_value());
}

// --- Fault injection --------------------------------------------------------

TEST_F(ShardIoTest, TruncatedShardIsReported) {
  const Corpus corpus = SmallCorpus(/*num_documents=*/5);
  auto paths = WriteCorpusShards(corpus, Dir(), "corpus", /*shard_size=*/5);
  ASSERT_TRUE(paths.ok());

  std::vector<std::string> lines = ReadLines((*paths)[0]);
  ASSERT_EQ(lines.size(), 6u);  // header + 5 documents
  lines.pop_back();
  WriteLines((*paths)[0], lines);

  auto docs = ReadWholeShard((*paths)[0]);
  ASSERT_FALSE(docs.ok());
  EXPECT_EQ(docs.status().code(), util::StatusCode::kParseError);
  EXPECT_NE(docs.status().message().find("truncated"), std::string::npos)
      << docs.status().ToString();
  EXPECT_NE(docs.status().message().find((*paths)[0]), std::string::npos);
}

TEST_F(ShardIoTest, CorruptedContentFailsTheChecksum) {
  const Corpus corpus = SmallCorpus(/*num_documents=*/3);
  auto paths = WriteCorpusShards(corpus, Dir(), "corpus", /*shard_size=*/3);
  ASSERT_TRUE(paths.ok());

  // Flip one content byte inside a string value; the line stays valid
  // JSON, so only the checksum can catch it.
  std::vector<std::string> lines = ReadLines((*paths)[0]);
  ASSERT_GE(lines.size(), 2u);
  const size_t pos = lines[1].find("\"domain\":\"");
  ASSERT_NE(pos, std::string::npos);
  char& byte = lines[1][pos + 10];
  byte = byte == 'X' ? 'Y' : 'X';
  WriteLines((*paths)[0], lines);

  auto docs = ReadWholeShard((*paths)[0]);
  ASSERT_FALSE(docs.ok());
  EXPECT_EQ(docs.status().code(), util::StatusCode::kParseError);
  EXPECT_NE(docs.status().message().find("checksum mismatch"),
            std::string::npos)
      << docs.status().ToString();
}

TEST_F(ShardIoTest, TrailingDataIsReported) {
  const Corpus corpus = SmallCorpus(/*num_documents=*/2);
  auto paths = WriteCorpusShards(corpus, Dir(), "corpus", /*shard_size=*/2);
  ASSERT_TRUE(paths.ok());

  std::vector<std::string> lines = ReadLines((*paths)[0]);
  lines.push_back(lines.back());  // duplicate the last document line
  WriteLines((*paths)[0], lines);

  auto docs = ReadWholeShard((*paths)[0]);
  ASSERT_FALSE(docs.ok());
  EXPECT_NE(docs.status().message().find("trailing data"), std::string::npos)
      << docs.status().ToString();
}

TEST_F(ShardIoTest, MissingShardFileIsReported) {
  auto reader = ShardReader::Open(Dir() + "/does-not-exist-00000.jsonl");
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), util::StatusCode::kNotFound);

  // A gap in a sharded corpus (middle shard deleted) is caught up front.
  const Corpus corpus = SmallCorpus(/*num_documents=*/6);
  ASSERT_TRUE(
      WriteCorpusShards(corpus, Dir(), "corpus", /*shard_size=*/2).ok());
  fs::remove(ShardPath(Dir(), "corpus", 1));
  auto sharded = ShardedCorpusReader::Open(Dir(), "corpus");
  ASSERT_FALSE(sharded.ok());
  EXPECT_EQ(sharded.status().code(), util::StatusCode::kNotFound);
  EXPECT_NE(sharded.status().message().find("missing shard"),
            std::string::npos)
      << sharded.status().ToString();
}

TEST_F(ShardIoTest, EmptyShardFileIsReported) {
  const std::string path = ShardPath(Dir(), "corpus", 0);
  std::ofstream(path).close();  // zero bytes
  auto reader = ShardReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), util::StatusCode::kParseError);
  EXPECT_NE(reader.status().message().find("empty shard"), std::string::npos)
      << reader.status().ToString();
}

TEST_F(ShardIoTest, HeaderOfWrongFormatIsReported) {
  const std::string path = ShardPath(Dir(), "corpus", 0);
  WriteLines(path, {"{\"format\":\"something-else\"}"});
  auto reader = ShardReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("briq-shard-v1"),
            std::string::npos);

  WriteLines(path, {"not json at all"});
  reader = ShardReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), util::StatusCode::kParseError);
}

TEST_F(ShardIoTest, EmptyDirectoryIsReported) {
  auto listed = ListShards(Dir(), "corpus");
  ASSERT_FALSE(listed.ok());
  EXPECT_EQ(listed.status().code(), util::StatusCode::kNotFound);

  auto missing_dir = ListShards(Dir() + "/nope", "corpus");
  ASSERT_FALSE(missing_dir.ok());
  EXPECT_EQ(missing_dir.status().code(), util::StatusCode::kNotFound);
}

TEST_F(ShardIoTest, ChecksumIsStableAndOrderSensitive) {
  const uint64_t a = Fnv1a64("briq");
  EXPECT_EQ(a, Fnv1a64("briq"));
  EXPECT_NE(a, Fnv1a64("brib"));
  EXPECT_NE(Fnv1a64("ab"), Fnv1a64("ba"));
  // Chaining is equivalent to hashing the concatenation.
  EXPECT_EQ(Fnv1a64("cd", Fnv1a64("ab")), Fnv1a64("abcd"));
}

}  // namespace
}  // namespace briq::corpus
