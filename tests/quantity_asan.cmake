# Keeps the quantity lexer honest on hostile bytes: configures a sub-build
# with -DBRIQ_SANITIZE=address, builds the requested test binaries, and runs
# them under ASan. The lexer suites drive single-pass scanning, bounded
# multi-byte UTF-8 matchers, and the locale-disambiguation pass over
# truncated and adversarial input, so overreads surface here rather than in
# production extraction.
#
# Expects -DSOURCE_DIR=<repo root>, -DWORKDIR=<scratch build dir>, and
# -DTARGETS=<'|'-separated test binary names> ('|' instead of ';' so the
# list survives add_test argument quoting).

if(NOT SOURCE_DIR OR NOT WORKDIR OR NOT TARGETS)
  message(FATAL_ERROR
    "quantity_asan: SOURCE_DIR, WORKDIR, and TARGETS must be set")
endif()

string(REPLACE "|" ";" test_binaries "${TARGETS}")

execute_process(
  COMMAND "${CMAKE_COMMAND}" -S "${SOURCE_DIR}" -B "${WORKDIR}"
          -DBRIQ_SANITIZE=address
  RESULT_VARIABLE rv
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR
    "configure with -DBRIQ_SANITIZE=address failed (${rv}):\n${out}\n${err}")
endif()

# quantity_lexer_test links the full pipeline library, so unlike the
# protocol-layer TSan sub-build this one compiles the whole tree — build
# parallel to stay inside the test timeout.
cmake_host_system_information(RESULT ncores QUERY NUMBER_OF_LOGICAL_CORES)
if(ncores LESS 1)
  set(ncores 1)
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" --build "${WORKDIR}"
          --target ${test_binaries} --parallel ${ncores}
  RESULT_VARIABLE rv
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR
    "build with -DBRIQ_SANITIZE=address failed (${rv}):\n${out}\n${err}")
endif()

foreach(binary ${test_binaries})
  execute_process(
    COMMAND "${WORKDIR}/tests/${binary}"
    RESULT_VARIABLE rv
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR
      "${binary} failed under ASan (${rv}):\n${out}\n${err}")
  endif()
endforeach()
