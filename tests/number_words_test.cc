#include "text/number_words.h"

#include <gtest/gtest.h>

namespace briq::text {
namespace {

struct Case {
  const char* phrase;
  double expected;
};

class NumberWordsTest : public ::testing::TestWithParam<Case> {};

TEST_P(NumberWordsTest, ParsesKnownPhrases) {
  auto v = ParseNumberWords(GetParam().phrase);
  ASSERT_TRUE(v.has_value()) << GetParam().phrase;
  EXPECT_DOUBLE_EQ(*v, GetParam().expected) << GetParam().phrase;
}

INSTANTIATE_TEST_SUITE_P(
    Known, NumberWordsTest,
    ::testing::Values(Case{"zero", 0}, Case{"seven", 7}, Case{"twenty", 20},
                      Case{"twenty five", 25}, Case{"twenty-five", 25},
                      Case{"hundred", 100}, Case{"three hundred", 300},
                      Case{"three hundred and five", 305},
                      Case{"two thousand", 2000},
                      Case{"two thousand five hundred", 2500},
                      Case{"two million", 2e6},
                      Case{"one hundred twenty three", 123},
                      Case{"three hundred fifty thousand", 350000},
                      Case{"one billion", 1e9}));

TEST(NumberWordsTest, RejectsNonNumbers) {
  EXPECT_FALSE(ParseNumberWords("hello world").has_value());
  EXPECT_FALSE(ParseNumberWords("").has_value());
  EXPECT_FALSE(ParseNumberWords("twenty potatoes").has_value());
  EXPECT_FALSE(ParseNumberWords("and").has_value());
}

TEST(NumberWordsTest, IsNumberWord) {
  EXPECT_TRUE(IsNumberWord("seven"));
  EXPECT_TRUE(IsNumberWord("Million"));
  EXPECT_TRUE(IsNumberWord("HUNDRED"));
  EXPECT_FALSE(IsNumberWord("patients"));
}

TEST(ScaleWordTest, Multipliers) {
  EXPECT_DOUBLE_EQ(*ScaleWordMultiplier("k"), 1e3);
  EXPECT_DOUBLE_EQ(*ScaleWordMultiplier("K"), 1e3);
  EXPECT_DOUBLE_EQ(*ScaleWordMultiplier("Mio"), 1e6);
  EXPECT_DOUBLE_EQ(*ScaleWordMultiplier("bn"), 1e9);
  EXPECT_DOUBLE_EQ(*ScaleWordMultiplier("billions"), 1e9);
  EXPECT_DOUBLE_EQ(*ScaleWordMultiplier("lakh"), 1e5);
  EXPECT_DOUBLE_EQ(*ScaleWordMultiplier("crore"), 1e7);
  EXPECT_FALSE(ScaleWordMultiplier("units").has_value());
}

}  // namespace
}  // namespace briq::text
