// Direct unit coverage for util::TcpListener and util::ClientSocket —
// previously exercised only end-to-end through the serve smoke test.

#include "util/tcp_listener.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <utility>

namespace briq::util {
namespace {

TEST(TcpListenerTest, ListenOnEphemeralPortResolvesRealPort) {
  Result<TcpListener> listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  EXPECT_GT(listener->port(), 0);
}

TEST(TcpListenerTest, AcceptOnceTimesOutWithoutAClient) {
  Result<TcpListener> listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(listener->AcceptOnce(/*timeout_seconds=*/0.05), -1);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // The timeout must actually bound the wait (wide margin for slow CI).
  EXPECT_LT(waited, 5.0);
}

TEST(TcpListenerTest, AcceptClientReturnsInvalidSocketOnTimeout) {
  Result<TcpListener> listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  ClientSocket conn = listener->AcceptClient(/*timeout_seconds=*/0.05);
  EXPECT_FALSE(conn.valid());
}

TEST(TcpListenerTest, AcceptsALoopbackConnection) {
  Result<TcpListener> listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();

  Result<ClientSocket> client = ClientSocket::Connect(listener->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  ClientSocket accepted = listener->AcceptClient(/*timeout_seconds=*/5.0);
  ASSERT_TRUE(accepted.valid());

  // Round-trip a few bytes through the accepted pair.
  EXPECT_TRUE(client->SendAll("ping"));
  char buf[16] = {};
  const ssize_t n = accepted.RecvSome(buf, sizeof(buf), 5.0);
  ASSERT_EQ(n, 4);
  EXPECT_EQ(std::string(buf, 4), "ping");

  EXPECT_TRUE(accepted.SendAll("pong"));
  const ssize_t m = client->RecvSome(buf, sizeof(buf), 5.0);
  ASSERT_EQ(m, 4);
  EXPECT_EQ(std::string(buf, 4), "pong");
}

TEST(TcpListenerTest, MoveConstructionTransfersTheListeningSocket) {
  Result<TcpListener> listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  const uint16_t port = listener->port();

  TcpListener moved(std::move(listener).value());
  EXPECT_EQ(moved.port(), port);

  // The moved-to listener still accepts.
  Result<ClientSocket> client = ClientSocket::Connect(port);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ClientSocket accepted = moved.AcceptClient(5.0);
  EXPECT_TRUE(accepted.valid());
}

TEST(TcpListenerTest, MoveAssignmentClosesTheOldSocketAndKeepsTheNew) {
  Result<TcpListener> a = TcpListener::Listen(0);
  Result<TcpListener> b = TcpListener::Listen(0);
  ASSERT_TRUE(a.ok() && b.ok());
  const uint16_t port_b = b->port();

  *a = std::move(b).value();  // a's original socket closes here
  EXPECT_EQ(a->port(), port_b);

  Result<ClientSocket> client = ClientSocket::Connect(port_b);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(a->AcceptClient(5.0).valid());
}

TEST(TcpListenerTest, DoubleCloseIsSafe) {
  Result<TcpListener> listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  listener->Close();
  listener->Close();  // idempotent
  EXPECT_EQ(listener->AcceptOnce(0.01), -1);
}

TEST(ClientSocketTest, ConnectToAClosedPortFails) {
  // Grab an ephemeral port, then close the listener so nothing is bound.
  Result<TcpListener> listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  const uint16_t port = listener->port();
  listener->Close();
  Result<ClientSocket> client = ClientSocket::Connect(port);
  EXPECT_FALSE(client.ok());
}

TEST(ClientSocketTest, MoveTransfersOwnershipAndDoubleCloseIsSafe) {
  Result<TcpListener> listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  Result<ClientSocket> client = ClientSocket::Connect(listener->port());
  ASSERT_TRUE(client.ok());
  const int fd = client->fd();

  ClientSocket moved(std::move(client).value());
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(moved.fd(), fd);

  ClientSocket assigned;
  assigned = std::move(moved);
  EXPECT_FALSE(moved.valid());  // NOLINT(bugprone-use-after-move): asserted
  EXPECT_TRUE(assigned.valid());

  assigned.Close();
  assigned.Close();  // idempotent
  EXPECT_FALSE(assigned.valid());
  EXPECT_FALSE(assigned.SendAll("x"));
  char buf[4];
  EXPECT_EQ(assigned.RecvSome(buf, sizeof(buf), 0.01), -1);
}

TEST(ClientSocketTest, RecvSomeReportsOrderlyPeerClose) {
  Result<TcpListener> listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  Result<ClientSocket> client = ClientSocket::Connect(listener->port());
  ASSERT_TRUE(client.ok());
  ClientSocket accepted = listener->AcceptClient(5.0);
  ASSERT_TRUE(accepted.valid());

  client->Close();
  char buf[4];
  EXPECT_EQ(accepted.RecvSome(buf, sizeof(buf), 5.0), 0);
}

}  // namespace
}  // namespace briq::util
