// Robustness sweep: the HTML pipeline must never crash or hang on
// malformed, truncated, or adversarial input — web-crawl data guarantees
// all three.

#include <gtest/gtest.h>

#include "html/page_segmenter.h"
#include "html/table_extractor.h"
#include "util/random.h"

namespace briq::html {
namespace {

class MalformedHtmlTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MalformedHtmlTest, ParsesWithoutCrashing) {
  // The only requirement: no crash, no check failure, a usable Page.
  Page page = SegmentPage(GetParam());
  (void)page.ParagraphCount();
  (void)page.TableCount();
  auto tables = ExtractTables(GetParam());
  for (const auto& t : tables) {
    EXPECT_GE(t.num_rows(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MalformedHtmlTest,
    ::testing::Values(
        "",
        "<",
        "<<<>>>",
        "<table>",
        "<table><tr>",
        "<table><tr><td>",
        "</td></tr></table>",
        "<p><table><p></table>",
        "<table><table><table>",
        "<td colspan=\"999999\">x</td>",
        "<table><tr><td rowspan=\"-3\">x</td></tr></table>",
        "<table><tr><td colspan=\"abc\">x</td></tr></table>",
        "<b><i><u>nested <p> inline </b> chaos</i>",
        "<script>unterminated",
        "<!-- unterminated comment <table><tr><td>1",
        "<p>&#xZZ; &notareal; &#99999999999;</p>",
        "<p attr=>empty attr</p>",
        "<p a=\"unterminated>text",
        "\xFF\xFE binary junk \x01\x02<p>x</p>",
        "<table><tr><td>1</td><td>2</td></tr><tr><td>3</td></tr><tr></tr>"
        "</table>"));

TEST(HtmlFuzzTest, RandomByteSoup) {
  util::Rng rng(2024);
  const char alphabet[] = "<>/=\"' abtdrphl123&;#x-";
  for (int round = 0; round < 200; ++round) {
    std::string soup;
    size_t len = rng.UniformInt(uint64_t{200});
    for (size_t i = 0; i < len; ++i) {
      soup.push_back(alphabet[rng.UniformInt(sizeof(alphabet) - 1)]);
    }
    Page page = SegmentPage(soup);  // must not crash
    (void)page;
  }
  SUCCEED();
}

TEST(HtmlFuzzTest, RandomTagNesting) {
  util::Rng rng(77);
  const char* tags[] = {"p", "div", "table", "tr", "td", "th", "span",
                        "ul", "li", "b", "caption", "thead", "tbody"};
  for (int round = 0; round < 100; ++round) {
    std::string html;
    int n = static_cast<int>(rng.UniformInt(int64_t{5}, int64_t{40}));
    for (int i = 0; i < n; ++i) {
      const char* tag = tags[rng.UniformInt(uint64_t{13})];
      if (rng.Bernoulli(0.45)) {
        html += "</" + std::string(tag) + ">";
      } else {
        html += "<" + std::string(tag) + ">";
      }
      if (rng.Bernoulli(0.5)) {
        html += std::to_string(rng.UniformInt(uint64_t{1000}));
      }
    }
    Page page = SegmentPage(html);
    auto tables = ExtractTables(html);
    (void)page;
    (void)tables;
  }
  SUCCEED();
}

}  // namespace
}  // namespace briq::html
