#include "quantity/numeric_literal.h"

#include <gtest/gtest.h>

namespace briq::quantity {
namespace {

struct Case {
  const char* token;
  double value;
  int precision;
};

class NumericLiteralTest : public ::testing::TestWithParam<Case> {};

TEST_P(NumericLiteralTest, ParsesKnownForms) {
  auto r = ParseNumericLiteral(GetParam().token);
  ASSERT_TRUE(r.ok()) << GetParam().token << ": " << r.status().ToString();
  EXPECT_DOUBLE_EQ(r->value, GetParam().value) << GetParam().token;
  EXPECT_EQ(r->precision, GetParam().precision) << GetParam().token;
}

INSTANTIATE_TEST_SUITE_P(
    Known, NumericLiteralTest,
    ::testing::Values(
        Case{"890", 890, 0},                 // plain integer
        Case{"3.26", 3.26, 2},               // decimal
        Case{"0.19", 0.19, 2},               // leading zero decimal
        Case{"1,234", 1234, 0},              // US grouping
        Case{"1,144,716", 1144716, 0},       // US grouping
        Case{"1,234.56", 1234.56, 2},        // US grouping + decimal
        Case{"2,29,866", 229866, 0},         // Indian grouping
        Case{"1,23,45,678", 12345678, 0},    // Indian grouping
        Case{"0,877", 0.877, 3},             // European decimal comma
        Case{"3,26", 3.26, 2},               // decimal comma, short group
        Case{"1.234.567", 1234567, 0},       // European grouping
        Case{"12.7", 12.7, 1}));

TEST(NumericLiteralTest, RejectsNonNumbers) {
  EXPECT_FALSE(ParseNumericLiteral("").ok());
  EXPECT_FALSE(ParseNumericLiteral("abc").ok());
  EXPECT_FALSE(ParseNumericLiteral("1.2.3").ok());   // heading-like
  EXPECT_FALSE(ParseNumericLiteral("12,34").ok() &&
               ParseNumericLiteral("12,34")->had_separators);
  EXPECT_FALSE(ParseNumericLiteral("1,2,3").ok());   // bad grouping
  EXPECT_FALSE(ParseNumericLiteral("1..2").ok());
}

TEST(NumericLiteralTest, SeparatorFlag) {
  EXPECT_TRUE(ParseNumericLiteral("1,234")->had_separators);
  EXPECT_FALSE(ParseNumericLiteral("1234")->had_separators);
  EXPECT_FALSE(ParseNumericLiteral("0,877")->had_separators);
}

TEST(NumericLiteralTest, DecimalCommaShortFinalGroup) {
  // "12,34" -> decimal comma reading 12.34 (final group of 2).
  auto r = ParseNumericLiteral("12,34");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->value, 12.34);
  EXPECT_EQ(r->precision, 2);
}

}  // namespace
}  // namespace briq::quantity
