// Tests of the two extension modules: the QKB exact-match baseline and the
// ILP-style joint resolver.

#include <gtest/gtest.h>

#include "core/ilp_resolution.h"
#include "core/qkb.h"
#include "corpus/paper_examples.h"

namespace briq::core {
namespace {

// ---------------------------------------------------------------------------
// QKB baseline.
// ---------------------------------------------------------------------------

TEST(QkbTest, CanonicalizeRegisteredUnits) {
  auto usd = QkbAligner::Canonicalize("USD", quantity::UnitCategory::kCurrency,
                                      500);
  ASSERT_TRUE(usd.has_value());
  EXPECT_EQ(usd->measure, "currency:USD");

  auto pct = QkbAligner::Canonicalize("percent",
                                      quantity::UnitCategory::kPercent, 5);
  ASSERT_TRUE(pct.has_value());
  EXPECT_EQ(pct->measure, "percent");

  auto count = QkbAligner::Canonicalize("", quantity::UnitCategory::kNone, 7);
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(count->measure, "count");
}

TEST(QkbTest, UnregisteredUnitsFail) {
  EXPECT_FALSE(QkbAligner::Canonicalize(
                   "MPGe", quantity::UnitCategory::kFuelEconomy, 105)
                   .has_value());
  EXPECT_FALSE(
      QkbAligner::Canonicalize("JPY", quantity::UnitCategory::kCurrency, 5)
          .has_value());
}

TEST(QkbTest, AlignsExactUnambiguousMatches) {
  corpus::Document doc = corpus::Figure1aHealth();
  BriqConfig config;
  PreparedDocument prepared = PrepareDocument(doc, config);
  QkbAligner qkb;
  DocumentAlignment alignment = qkb.Align(prepared);

  // "38" matches exactly one cell -> aligned; "123" (sum) has no explicit
  // cell; "5" collides (Nausea/male == 5, Eye Disorders/total == 5) ->
  // abstain.
  bool found_38 = false;
  for (const auto& d : alignment.decisions) {
    const auto& x = prepared.text_mentions[d.text_idx];
    const auto& t = prepared.table_mentions[d.table_idx];
    EXPECT_FALSE(t.is_virtual());
    if (x.surface() == "38") {
      found_38 = true;
      EXPECT_EQ(t.cells[0], (table::CellRef{2, 3}));
    }
    EXPECT_NE(x.surface(), "5");    // ambiguous -> abstains
    EXPECT_NE(x.surface(), "123");  // aggregate -> not in KB
  }
  EXPECT_TRUE(found_38);
}

TEST(QkbTest, ApproximateMentionsNeverMatch) {
  // Figure 1b: "37K EUR" vs cell 36900 — the QKB requires exact values.
  corpus::Document doc = corpus::Figure1bEnvironment();
  BriqConfig config;
  PreparedDocument prepared = PrepareDocument(doc, config);
  QkbAligner qkb;
  DocumentAlignment alignment = qkb.Align(prepared);
  for (const auto& d : alignment.decisions) {
    EXPECT_NE(prepared.text_mentions[d.text_idx].surface(), "37K EUR");
  }
}

// ---------------------------------------------------------------------------
// ILP resolver.
// ---------------------------------------------------------------------------

// Builds a tiny prepared document skeleton sufficient for the resolver:
// `n_text` text mentions, table mentions as given.
struct TinySetup {
  corpus::Document doc;
  PreparedDocument prepared;
};

TinySetup MakeTiny() {
  TinySetup s;
  s.doc = corpus::Figure3CoupledQuantities();
  BriqConfig config;
  s.prepared = PrepareDocument(s.doc, config);
  return s;
}

int TableMentionIn(const PreparedDocument& doc, int table_index) {
  for (size_t j = 0; j < doc.table_mentions.size(); ++j) {
    if (doc.table_mentions[j].table_index == table_index &&
        !doc.table_mentions[j].is_virtual()) {
      return static_cast<int>(j);
    }
  }
  return -1;
}

TEST(IlpResolverTest, PicksHighestScoreUnderConstraints) {
  TinySetup s = MakeTiny();
  ASSERT_GE(s.prepared.text_mentions.size(), 2u);

  int t0 = TableMentionIn(s.prepared, 0);
  int t1 = TableMentionIn(s.prepared, 1);
  ASSERT_GE(t0, 0);
  ASSERT_GE(t1, 0);

  // Two mentions, both preferring the SAME single cell: constraint (b)
  // forces the second onto its runner-up.
  std::vector<std::vector<Candidate>> candidates(
      s.prepared.text_mentions.size());
  candidates[0] = {{0, static_cast<size_t>(t0), 0.9},
                   {0, static_cast<size_t>(t1), 0.2}};
  candidates[1] = {{1, static_cast<size_t>(t0), 0.8},
                   {1, static_cast<size_t>(t1), 0.7}};

  IlpResolver::Options options;
  options.table_coherence_bonus = 0.0;
  IlpResolver resolver(options);
  IlpResolver::SearchStats stats;
  DocumentAlignment a = resolver.Resolve(s.prepared, candidates, &stats);

  ASSERT_EQ(a.decisions.size(), 2u);
  EXPECT_TRUE(stats.optimal);
  EXPECT_EQ(a.decisions[0].table_idx, t0);
  EXPECT_EQ(a.decisions[1].table_idx, t1);  // forced off the taken cell
}

TEST(IlpResolverTest, CoherenceBonusTipsTheBalance) {
  TinySetup s = MakeTiny();
  int t0 = TableMentionIn(s.prepared, 0);
  int t1 = TableMentionIn(s.prepared, 1);
  // Find a second, different single cell in table 0.
  int t0b = -1;
  for (size_t j = 0; j < s.prepared.table_mentions.size(); ++j) {
    if (s.prepared.table_mentions[j].table_index == 0 &&
        !s.prepared.table_mentions[j].is_virtual() &&
        static_cast<int>(j) != t0) {
      t0b = static_cast<int>(j);
      break;
    }
  }
  ASSERT_GE(t0b, 0);

  std::vector<std::vector<Candidate>> candidates(
      s.prepared.text_mentions.size());
  // Mention 0 firmly in table 0; mention 1 slightly prefers table 1, but
  // coherence with mention 0 should pull it into table 0.
  candidates[0] = {{0, static_cast<size_t>(t0), 0.9}};
  candidates[1] = {{1, static_cast<size_t>(t1), 0.50},
                   {1, static_cast<size_t>(t0b), 0.46}};

  IlpResolver::Options with_bonus;
  with_bonus.table_coherence_bonus = 0.1;
  DocumentAlignment a =
      IlpResolver(with_bonus).Resolve(s.prepared, candidates, nullptr);
  const AlignmentDecision* d1 = a.ForTextMention(1);
  ASSERT_NE(d1, nullptr);
  EXPECT_EQ(d1->table_idx, t0b);  // coherence won

  IlpResolver::Options no_bonus;
  no_bonus.table_coherence_bonus = 0.0;
  a = IlpResolver(no_bonus).Resolve(s.prepared, candidates, nullptr);
  d1 = a.ForTextMention(1);
  ASSERT_NE(d1, nullptr);
  EXPECT_EQ(d1->table_idx, t1);  // raw score wins without the bonus
}

TEST(IlpResolverTest, EpsilonLeavesWeakMentionsUnaligned) {
  TinySetup s = MakeTiny();
  int t0 = TableMentionIn(s.prepared, 0);
  std::vector<std::vector<Candidate>> candidates(
      s.prepared.text_mentions.size());
  candidates[0] = {{0, static_cast<size_t>(t0), 0.01}};  // below epsilon

  IlpResolver::Options options;
  options.epsilon = 0.05;
  DocumentAlignment a =
      IlpResolver(options).Resolve(s.prepared, candidates, nullptr);
  EXPECT_EQ(a.ForTextMention(0), nullptr);
}

TEST(IlpResolverTest, NodeCapReportsNonOptimal) {
  TinySetup s = MakeTiny();
  // Many mentions x many near-tie candidates: force the cap.
  std::vector<std::vector<Candidate>> candidates(
      s.prepared.text_mentions.size());
  std::vector<size_t> singles;
  for (size_t j = 0; j < s.prepared.table_mentions.size(); ++j) {
    if (!s.prepared.table_mentions[j].is_virtual()) singles.push_back(j);
  }
  ASSERT_GE(singles.size(), 6u);
  for (size_t x = 0; x < candidates.size(); ++x) {
    for (size_t k = 0; k < 6; ++k) {
      candidates[x].push_back(
          {x, singles[k], 0.5 + 0.0001 * static_cast<double>(k + x)});
    }
    std::sort(candidates[x].begin(), candidates[x].end(),
              [](const Candidate& a, const Candidate& b) {
                return a.score > b.score;
              });
  }
  IlpResolver::Options options;
  options.max_nodes = 50;
  IlpResolver::SearchStats stats;
  IlpResolver(options).Resolve(s.prepared, candidates, &stats);
  EXPECT_FALSE(stats.optimal);
  EXPECT_LE(stats.nodes_explored, 51u);
}

}  // namespace
}  // namespace briq::core
