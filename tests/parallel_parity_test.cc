// Determinism guarantees of the parallel execution layer: forest training
// and batch alignment must produce bit-identical results no matter how
// many worker threads run them.

#include <gtest/gtest.h>

#include <vector>

#include "core/pipeline.h"
#include "corpus/generator.h"
#include "ml/random_forest.h"
#include "util/random.h"

namespace briq {
namespace {

using core::BriqConfig;
using core::BriqSystem;
using core::DocumentAlignment;
using core::PreparedDocument;

ml::Dataset MakeDataset(int num_rows) {
  util::Rng rng(91);
  ml::Dataset data(6);
  for (int i = 0; i < num_rows; ++i) {
    std::vector<double> x(6);
    for (double& v : x) v = rng.UniformDouble();
    data.Add(x, x[0] + 0.3 * x[3] > 0.6 ? 1 : 0);
  }
  return data;
}

// Exact (==, not near) probability equality over a probe grid: with
// deterministic per-tree seeding, scheduling must not change a single bit.
void ExpectForestsIdentical(const ml::RandomForest& a,
                            const ml::RandomForest& b) {
  ASSERT_EQ(a.num_trees(), b.num_trees());
  ASSERT_EQ(a.num_classes(), b.num_classes());
  util::Rng rng(17);
  for (int probe = 0; probe < 200; ++probe) {
    std::vector<double> x(6);
    for (double& v : x) v = rng.UniformDouble();
    const std::vector<double> pa = a.PredictProba(x.data());
    const std::vector<double> pb = b.PredictProba(x.data());
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t c = 0; c < pa.size(); ++c) {
      EXPECT_EQ(pa[c], pb[c]) << "probe " << probe << " class " << c;
    }
  }
  const std::vector<double> ia = a.FeatureImportance();
  const std::vector<double> ib = b.FeatureImportance();
  ASSERT_EQ(ia.size(), ib.size());
  for (size_t f = 0; f < ia.size(); ++f) EXPECT_EQ(ia[f], ib[f]);
}

TEST(ForestParityTest, ParallelFitMatchesSequentialFit) {
  ml::Dataset data = MakeDataset(600);
  ml::ForestConfig sequential;
  sequential.num_trees = 24;
  sequential.num_threads = 1;
  ml::ForestConfig parallel = sequential;
  parallel.num_threads = 8;

  ml::RandomForest a;
  ml::RandomForest b;
  a.Fit(data, sequential);
  b.Fit(data, parallel);
  ExpectForestsIdentical(a, b);
}

TEST(ForestParityTest, ParityHoldsWithoutBootstrap) {
  ml::Dataset data = MakeDataset(400);
  ml::ForestConfig sequential;
  sequential.num_trees = 12;
  sequential.bootstrap = false;
  sequential.num_threads = 1;
  ml::ForestConfig parallel = sequential;
  parallel.num_threads = 5;

  ml::RandomForest a;
  ml::RandomForest b;
  a.Fit(data, sequential);
  b.Fit(data, parallel);
  ExpectForestsIdentical(a, b);
}

void ExpectAlignmentsIdentical(const DocumentAlignment& a,
                               const DocumentAlignment& b) {
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].text_idx, b.decisions[i].text_idx);
    EXPECT_EQ(a.decisions[i].table_idx, b.decisions[i].table_idx);
    EXPECT_EQ(a.decisions[i].score, b.decisions[i].score);
  }
}

class AlignBatchParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::CorpusOptions options;
    options.num_documents = 60;
    options.seed = 4711;
    corpus_ = new corpus::Corpus(corpus::GenerateCorpus(options));
    config_ = new BriqConfig();
    docs_ = new std::vector<PreparedDocument>();
    for (const corpus::Document& d : corpus_->documents) {
      docs_->push_back(core::PrepareDocument(d, *config_));
    }
    // Train on the first 40 documents; align the rest.
    std::vector<const PreparedDocument*> train;
    for (size_t i = 0; i < 40; ++i) train.push_back(&(*docs_)[i]);
    system_ = new BriqSystem(*config_);
    ASSERT_TRUE(system_->Train(train).ok());
  }

  static void TearDownTestSuite() {
    delete system_;
    delete docs_;
    delete config_;
    delete corpus_;
  }

  static std::vector<const PreparedDocument*> TestBatch() {
    std::vector<const PreparedDocument*> batch;
    for (size_t i = 40; i < docs_->size(); ++i) batch.push_back(&(*docs_)[i]);
    return batch;
  }

  static corpus::Corpus* corpus_;
  static BriqConfig* config_;
  static std::vector<PreparedDocument>* docs_;
  static BriqSystem* system_;
};

corpus::Corpus* AlignBatchParityTest::corpus_ = nullptr;
BriqConfig* AlignBatchParityTest::config_ = nullptr;
std::vector<PreparedDocument>* AlignBatchParityTest::docs_ = nullptr;
BriqSystem* AlignBatchParityTest::system_ = nullptr;

TEST_F(AlignBatchParityTest, BatchMatchesSequentialAlign) {
  const auto batch = TestBatch();
  const auto sequential = system_->AlignBatch(batch, /*num_threads=*/1);
  ASSERT_EQ(sequential.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectAlignmentsIdentical(sequential[i], system_->Align(*batch[i]));
  }
}

TEST_F(AlignBatchParityTest, EightThreadsMatchSingleThread) {
  const auto batch = TestBatch();
  const auto one = system_->AlignBatch(batch, /*num_threads=*/1);
  const auto eight = system_->AlignBatch(batch, /*num_threads=*/8);
  ASSERT_EQ(one.size(), eight.size());
  for (size_t i = 0; i < one.size(); ++i) {
    ExpectAlignmentsIdentical(one[i], eight[i]);
  }
}

TEST_F(AlignBatchParityTest, ParallelTrainingYieldsIdenticalSystem) {
  // Train a second system with every forest fitted on 8 threads; the
  // resulting alignments must be bit-identical to the sequential system's.
  BriqConfig parallel_config = *config_;
  parallel_config.forest.num_threads = 8;
  parallel_config.tagger_forest.num_threads = 8;
  BriqSystem parallel_system(parallel_config);
  std::vector<const PreparedDocument*> train;
  for (size_t i = 0; i < 40; ++i) train.push_back(&(*docs_)[i]);
  ASSERT_TRUE(parallel_system.Train(train).ok());

  const auto batch = TestBatch();
  const auto a = system_->AlignBatch(batch, 1);
  const auto b = parallel_system.AlignBatch(batch, 4);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ExpectAlignmentsIdentical(a[i], b[i]);
  }
}

}  // namespace
}  // namespace briq
