// End-to-end integration tests: generate a corpus, train BriQ, align, and
// verify the paper's headline shape — BriQ outperforms both baselines, and
// quality degrades gracefully under mention perturbation (Table II).

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/evaluation.h"
#include "core/gt_matching.h"
#include "core/pipeline.h"
#include "corpus/generator.h"
#include "corpus/perturb.h"

namespace briq {
namespace {

using core::BriqConfig;
using core::BriqSystem;
using core::EvalResult;
using core::PreparedDocument;

std::vector<PreparedDocument> PrepareAll(const corpus::Corpus& corpus,
                                         const BriqConfig& config) {
  std::vector<PreparedDocument> out;
  out.reserve(corpus.size());
  for (const corpus::Document& d : corpus.documents) {
    out.push_back(core::PrepareDocument(d, config));
  }
  return out;
}

std::vector<const PreparedDocument*> Pointers(
    const std::vector<PreparedDocument>& docs) {
  std::vector<const PreparedDocument*> out;
  for (const auto& d : docs) out.push_back(&d);
  return out;
}

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::CorpusOptions options;
    options.num_documents = 120;
    options.seed = 2024;
    corpus_ = new corpus::Corpus(corpus::GenerateCorpus(options));

    config_ = new BriqConfig();
    train_docs_ = new std::vector<PreparedDocument>();
    test_docs_ = new std::vector<PreparedDocument>();
    // 80/20 split by document.
    const size_t split = corpus_->size() * 8 / 10;
    for (size_t i = 0; i < corpus_->size(); ++i) {
      auto prepared = core::PrepareDocument(corpus_->documents[i], *config_);
      (i < split ? train_docs_ : test_docs_)->push_back(std::move(prepared));
    }

    system_ = new BriqSystem(*config_);
    ASSERT_TRUE(system_->Train(Pointers(*train_docs_)).ok());
  }

  static void TearDownTestSuite() {
    delete system_;
    delete test_docs_;
    delete train_docs_;
    delete config_;
    delete corpus_;
  }

  static corpus::Corpus* corpus_;
  static BriqConfig* config_;
  static std::vector<PreparedDocument>* train_docs_;
  static std::vector<PreparedDocument>* test_docs_;
  static BriqSystem* system_;
};

corpus::Corpus* EndToEndTest::corpus_ = nullptr;
BriqConfig* EndToEndTest::config_ = nullptr;
std::vector<PreparedDocument>* EndToEndTest::train_docs_ = nullptr;
std::vector<PreparedDocument>* EndToEndTest::test_docs_ = nullptr;
BriqSystem* EndToEndTest::system_ = nullptr;

TEST_F(EndToEndTest, CorpusHasGroundTruth) {
  size_t total_gt = 0;
  for (const auto& d : corpus_->documents) total_gt += d.ground_truth.size();
  EXPECT_GT(total_gt, 300u);
}

TEST_F(EndToEndTest, ExtractionFindsMostGroundTruthMentions) {
  size_t found = 0;
  size_t total = 0;
  for (const auto& doc : *test_docs_) {
    for (const auto& m : core::MatchGroundTruth(doc)) {
      ++total;
      if (m.text_idx >= 0 && m.table_idx >= 0) ++found;
    }
  }
  ASSERT_GT(total, 0u);
  // Extraction + virtual-cell generation should cover nearly all targets.
  EXPECT_GT(static_cast<double>(found) / total, 0.9)
      << "found " << found << " of " << total;
}

TEST_F(EndToEndTest, BriqReachesUsableQuality) {
  EvalResult r = core::EvaluateCorpus(*system_, *test_docs_);
  EXPECT_GT(r.Precision(), 0.55) << "P=" << r.Precision();
  EXPECT_GT(r.Recall(), 0.45) << "R=" << r.Recall();
  EXPECT_GT(r.F1(), 0.5) << "F1=" << r.F1();
}

TEST_F(EndToEndTest, BriqBeatsBothBaselines) {
  EvalResult briq = core::EvaluateCorpus(*system_, *test_docs_);
  core::RfOnlyAligner rf(system_);
  EvalResult rf_result = core::EvaluateCorpus(rf, *test_docs_);
  core::RwrOnlyAligner rwr(config_);
  EvalResult rwr_result = core::EvaluateCorpus(rwr, *test_docs_);

  EXPECT_GT(briq.F1(), rf_result.F1());
  EXPECT_GT(briq.F1(), rwr_result.F1());
}

TEST_F(EndToEndTest, PerturbationDegradesGracefully) {
  EvalResult original = core::EvaluateCorpus(*system_, *test_docs_);

  corpus::Corpus truncated;
  corpus::Corpus rounded;
  const size_t split = corpus_->size() * 8 / 10;
  for (size_t i = split; i < corpus_->size(); ++i) {
    truncated.documents.push_back(corpus::PerturbDocument(
        corpus_->documents[i], corpus::PerturbMode::kTruncate));
    rounded.documents.push_back(corpus::PerturbDocument(
        corpus_->documents[i], corpus::PerturbMode::kRound));
  }
  auto truncated_docs = PrepareAll(truncated, *config_);
  auto rounded_docs = PrepareAll(rounded, *config_);

  EvalResult tr = core::EvaluateCorpus(*system_, truncated_docs);
  EvalResult ro = core::EvaluateCorpus(*system_, rounded_docs);

  // Perturbed mentions are harder, but the system must keep working.
  EXPECT_GT(tr.F1(), 0.25);
  EXPECT_GT(ro.F1(), 0.2);
  EXPECT_GE(original.F1() + 1e-9, tr.F1());
}

}  // namespace
}  // namespace briq
