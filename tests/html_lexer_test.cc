#include "html/html_lexer.h"

#include <gtest/gtest.h>

namespace briq::html {
namespace {

TEST(DecodeEntitiesTest, NamedEntities) {
  EXPECT_EQ(DecodeEntities("a &amp; b"), "a & b");
  EXPECT_EQ(DecodeEntities("&lt;tag&gt;"), "<tag>");
  EXPECT_EQ(DecodeEntities("5&nbsp;km"), "5 km");
  EXPECT_EQ(DecodeEntities("&euro;37"), "\xE2\x82\xAC" "37");
  EXPECT_EQ(DecodeEntities("&pound;5"), "\xC2\xA3" "5");
  EXPECT_EQ(DecodeEntities("5 &plusmn; 1"), "5 \xC2\xB1 1");
}

TEST(DecodeEntitiesTest, NumericEntities) {
  EXPECT_EQ(DecodeEntities("&#65;"), "A");
  EXPECT_EQ(DecodeEntities("&#x41;"), "A");
  EXPECT_EQ(DecodeEntities("&#x20AC;"), "\xE2\x82\xAC");
}

TEST(DecodeEntitiesTest, MalformedStaysLiteral) {
  EXPECT_EQ(DecodeEntities("AT&T"), "AT&T");
  EXPECT_EQ(DecodeEntities("a & b"), "a & b");
  EXPECT_EQ(DecodeEntities("&unknownentity;"), "&unknownentity;");
  EXPECT_EQ(DecodeEntities("tail &"), "tail &");
}

TEST(LexerTest, TagsAndText) {
  auto tokens = LexHtml("<p>Hello</p>");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, HtmlTokenKind::kStartTag);
  EXPECT_EQ(tokens[0].tag, "p");
  EXPECT_EQ(tokens[1].kind, HtmlTokenKind::kText);
  EXPECT_EQ(tokens[1].textual, "Hello");
  EXPECT_EQ(tokens[2].kind, HtmlTokenKind::kEndTag);
}

TEST(LexerTest, TagNamesLowercased) {
  auto tokens = LexHtml("<TABLE><TR></TR></TABLE>");
  EXPECT_EQ(tokens[0].tag, "table");
  EXPECT_EQ(tokens[1].tag, "tr");
}

TEST(LexerTest, AttributesQuotedAndUnquoted) {
  auto tokens = LexHtml("<td colspan=\"2\" rowspan=3 class='x'>v</td>");
  ASSERT_GE(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].Attribute("colspan"), "2");
  EXPECT_EQ(tokens[0].Attribute("rowspan"), "3");
  EXPECT_EQ(tokens[0].Attribute("class"), "x");
  EXPECT_EQ(tokens[0].Attribute("missing"), "");
}

TEST(LexerTest, SelfClosingTag) {
  auto tokens = LexHtml("<br/>text");
  EXPECT_TRUE(tokens[0].self_closing);
}

TEST(LexerTest, CommentsAndDoctypeSkipped) {
  auto tokens = LexHtml("<!DOCTYPE html><!-- note --><p>x</p>");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].tag, "p");
}

TEST(LexerTest, ScriptContentSkipped) {
  auto tokens = LexHtml("<script>var x = '<p>not a tag</p>';</script><p>y</p>");
  // Script content must not leak into the token stream.
  for (const auto& t : tokens) {
    if (t.kind == HtmlTokenKind::kText) EXPECT_EQ(t.textual, "y");
  }
}

TEST(LexerTest, StrayAngleBracket) {
  auto tokens = LexHtml("a < b and c > d");
  ASSERT_FALSE(tokens.empty());
  EXPECT_EQ(tokens[0].kind, HtmlTokenKind::kText);
}

TEST(LexerTest, WhitespaceOnlyTextSkipped) {
  auto tokens = LexHtml("<tr>\n   <td>1</td>\n</tr>");
  int text_tokens = 0;
  for (const auto& t : tokens) {
    if (t.kind == HtmlTokenKind::kText) ++text_tokens;
  }
  EXPECT_EQ(text_tokens, 1);
}

TEST(LexerTest, EntityInText) {
  auto tokens = LexHtml("<td>Automation &amp; Control</td>");
  EXPECT_EQ(tokens[1].textual, "Automation & Control");
}

}  // namespace
}  // namespace briq::html
