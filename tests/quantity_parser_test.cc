#include "quantity/quantity_parser.h"

#include <gtest/gtest.h>

namespace briq::quantity {
namespace {

// ---------------------------------------------------------------------------
// Text extraction: surface forms the paper calls out.
// ---------------------------------------------------------------------------

struct ExtractCase {
  const char* txt;
  double value;        // normalized value of the (single) expected mention
  const char* unit;    // canonical unit or ""
};

class ExtractOneTest : public ::testing::TestWithParam<ExtractCase> {};

TEST_P(ExtractOneTest, ExtractsOneMention) {
  auto mentions = ExtractQuantities(GetParam().txt);
  ASSERT_EQ(mentions.size(), 1u) << GetParam().txt;
  EXPECT_DOUBLE_EQ(mentions[0].value, GetParam().value) << GetParam().txt;
  EXPECT_EQ(mentions[0].unit, GetParam().unit) << GetParam().txt;
}

INSTANTIATE_TEST_SUITE_P(
    SurfaceForms, ExtractOneTest,
    ::testing::Values(
        ExtractCase{"reported by 38 patients", 38, ""},
        ExtractCase{"price was $500", 500, "USD"},
        ExtractCase{"cost of $500 million", 500e6, "USD"},
        ExtractCase{"about 0.5 million units sold", 500000, ""},
        ExtractCase{"fee of 1.34% applies", 1.34, "percent"},
        ExtractCase{"margins rose 60 bps", 0.6, "percent"},
        ExtractCase{"it was 37K EUR there", 37000, "EUR"},
        ExtractCase{"revenue of $3.26 billion was high", 3.26e9, "USD"},
        ExtractCase{"they sold 1,144,716 scooters", 1144716, ""},
        ExtractCase{"the price EUR 500 was fair", 500, "EUR"},
        ExtractCase{"weighs twenty pounds fully loaded", 20, "GBP"},
        ExtractCase{"grew 5 per cent that year", 5, "percent"},
        ExtractCase{"volume was 2,29,866 units there", 229866, ""},
        ExtractCase{"emits 105 g / km in town", 105, "g/km"}));

TEST(ExtractTest, CurrencyRefinement) {
  // "$70 million CDN": the CDN word narrows the $ to Canadian dollars
  // (canonical ISO code CAD).
  auto mentions = ExtractQuantities("was up $70 million CDN or so");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_DOUBLE_EQ(mentions[0].value, 70e6);
  EXPECT_EQ(mentions[0].unit, "CAD");
}

TEST(ExtractTest, UnnormalizedValueKept) {
  auto mentions = ExtractQuantities("about 37K EUR in Germany");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_DOUBLE_EQ(mentions[0].value, 37000);
  EXPECT_DOUBLE_EQ(mentions[0].unnormalized, 37);
  EXPECT_EQ(mentions[0].approx, ApproxIndicator::kApproximate);
}

TEST(ExtractTest, PrecisionRecorded) {
  auto mentions = ExtractQuantities("rate of 1.543 versus 1.5 before");
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].precision, 3);
  EXPECT_EQ(mentions[1].precision, 1);
}

TEST(ExtractTest, MultipleMentionsWithSpans) {
  std::string txt = "there were 69 female patients and 54 male patients";
  auto mentions = ExtractQuantities(txt);
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(txt.substr(mentions[0].span.begin, mentions[0].span.length()),
            mentions[0].surface);
  EXPECT_EQ(mentions[0].surface, "69");
  EXPECT_EQ(mentions[1].surface, "54");
}

// ---------------------------------------------------------------------------
// Complex quantities.
// ---------------------------------------------------------------------------

TEST(ExtractTest, ComplexQuantityNotSplit) {
  auto mentions = ExtractQuantities("moving at 5 \xC2\xB1 1 km per hour");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_TRUE(mentions[0].is_complex);
  EXPECT_DOUBLE_EQ(mentions[0].value, 5);
  EXPECT_EQ(mentions[0].approx, ApproxIndicator::kApproximate);
}

// ---------------------------------------------------------------------------
// Exclusion filters (paper §II-A).
// ---------------------------------------------------------------------------

TEST(FilterTest, YearsFiltered) {
  EXPECT_TRUE(ExtractQuantities("In 2013 the company changed course").empty());
  EXPECT_TRUE(ExtractQuantities("since 1999 it has been so").empty());
}

TEST(FilterTest, YearWithUnitKept) {
  // "2013 dollars" is a quantity, not a date.
  auto mentions = ExtractQuantities("cost 2013 dollars back then");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].unit, "USD");
}

TEST(FilterTest, TimesFiltered) {
  EXPECT_TRUE(ExtractQuantities("the call at 10:30 was long").empty());
  EXPECT_TRUE(ExtractQuantities("arrived at 9:15:59 sharp").empty());
}

TEST(FilterTest, SlashedDatesFiltered) {
  EXPECT_TRUE(ExtractQuantities("on 12/05/2014 they met").empty());
}

TEST(FilterTest, MonthAdjacentDaysFiltered) {
  EXPECT_TRUE(ExtractQuantities("on 18 December they signed").empty());
  EXPECT_TRUE(ExtractQuantities("August 2001 was hot").empty());
}

TEST(FilterTest, PhoneNumbersFiltered) {
  EXPECT_TRUE(ExtractQuantities("call 555-123-4567 now").empty());
}

TEST(FilterTest, ReferencesAndIdentifiersFiltered) {
  EXPECT_TRUE(ExtractQuantities("as shown in [2] earlier").empty());
  EXPECT_TRUE(ExtractQuantities("runs on Win10 machines").empty());
  EXPECT_TRUE(ExtractQuantities("see Section 1.1 for details").empty());
  EXPECT_TRUE(ExtractQuantities("the 7th item was best").empty());
}

TEST(FilterTest, HeadingNumbersFiltered) {
  EXPECT_TRUE(ExtractQuantities("Table 2 lists the results").empty());
  EXPECT_TRUE(ExtractQuantities("Figure 5 shows alignments").empty());
}

TEST(FilterTest, RangeNumbersKept) {
  // "from 3,193 to 3,263" are two legitimate mentions, not a date.
  auto mentions = ExtractQuantities("rose from 3,193 to 3,263 overall");
  EXPECT_EQ(mentions.size(), 2u);
}

// ---------------------------------------------------------------------------
// Approximation indicators.
// ---------------------------------------------------------------------------

struct ApproxCase {
  const char* txt;
  ApproxIndicator expected;
};

class ApproxTest : public ::testing::TestWithParam<ApproxCase> {};

TEST_P(ApproxTest, DetectsIndicator) {
  auto mentions = ExtractQuantities(GetParam().txt);
  ASSERT_EQ(mentions.size(), 1u) << GetParam().txt;
  EXPECT_EQ(mentions[0].approx, GetParam().expected) << GetParam().txt;
}

INSTANTIATE_TEST_SUITE_P(
    Cues, ApproxTest,
    ::testing::Values(
        ApproxCase{"about 500 units", ApproxIndicator::kApproximate},
        ApproxCase{"nearly 500 units", ApproxIndicator::kApproximate},
        ApproxCase{"ca. 500 units", ApproxIndicator::kApproximate},
        ApproxCase{"exactly 500 units", ApproxIndicator::kExact},
        ApproxCase{"more than 500 units", ApproxIndicator::kLowerBound},
        ApproxCase{"at least 500 units", ApproxIndicator::kLowerBound},
        ApproxCase{"less than 500 units", ApproxIndicator::kUpperBound},
        ApproxCase{"up to 500 units", ApproxIndicator::kUpperBound},
        ApproxCase{"over 500 units", ApproxIndicator::kLowerBound},
        ApproxCase{"under 500 units", ApproxIndicator::kUpperBound},
        ApproxCase{"precisely 500 units", ApproxIndicator::kExact},
        ApproxCase{"some 500 units", ApproxIndicator::kApproximate},
        ApproxCase{"just 500 units", ApproxIndicator::kNone}));

// ---------------------------------------------------------------------------
// Cell parsing.
// ---------------------------------------------------------------------------

struct CellCase {
  const char* cell;
  double value;
  const char* unit;
};

class CellTest : public ::testing::TestWithParam<CellCase> {};

TEST_P(CellTest, ParsesCells) {
  auto q = ParseCellQuantity(GetParam().cell);
  ASSERT_TRUE(q.has_value()) << GetParam().cell;
  EXPECT_DOUBLE_EQ(q->value, GetParam().value) << GetParam().cell;
  EXPECT_EQ(q->unit, GetParam().unit) << GetParam().cell;
}

INSTANTIATE_TEST_SUITE_P(
    Cells, CellTest,
    ::testing::Values(CellCase{"36900", 36900, ""},
                      CellCase{" 35 ", 35, ""},
                      CellCase{"$232.8 Million", 232.8e6, "USD"},
                      CellCase{"$(9.49) Million", -9.49e6, "USD"},
                      CellCase{"(42)", -42, ""},
                      CellCase{"12.7%", 12.7, "percent"},
                      CellCase{"60 bps", 0.6, "percent"},
                      CellCase{"1,144,716", 1144716, ""},
                      CellCase{"0,877", 0.877, ""},
                      CellCase{"-6.94", -6.94, ""},
                      CellCase{"105 MPGe", 105, "MPGe"}));

TEST(CellTest, NonQuantityCells) {
  EXPECT_FALSE(ParseCellQuantity("Rash").has_value());
  EXPECT_FALSE(ParseCellQuantity("--").has_value());
  EXPECT_FALSE(ParseCellQuantity("n/a").has_value());
  EXPECT_FALSE(ParseCellQuantity("").has_value());
  EXPECT_FALSE(ParseCellQuantity("   ").has_value());
}

TEST(CellTest, YearsKeptInCells) {
  // The date filter applies to text, not cells.
  auto q = ParseCellQuantity("2013");
  ASSERT_TRUE(q.has_value());
  EXPECT_DOUBLE_EQ(q->value, 2013);
}

}  // namespace
}  // namespace briq::quantity
