// Determinism guarantee of the out-of-core training path (DESIGN.md §5f):
// training through core::StreamingTrainer — in memory or spilled to disk,
// at any shard size and thread count — must produce forests bit-identical
// to the legacy in-memory BriqSystem::Train over the same documents, and a
// model file round trip must preserve every prediction bit.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/features.h"
#include "core/pipeline.h"
#include "core/streaming_trainer.h"
#include "corpus/generator.h"
#include "corpus/shard_io.h"

namespace briq {
namespace {

namespace fs = std::filesystem;

using core::BriqConfig;
using core::BriqSystem;
using core::PreparedDocument;
using core::StreamingTrainer;
using core::StreamingTrainOptions;
using core::TrainOnShardedCorpus;

class TrainParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::CorpusOptions options;
    options.num_documents = 40;
    options.seed = 9091;
    corpus_ = new corpus::Corpus(corpus::GenerateCorpus(options));

    // Shards keyed by pid: gtest_discover_tests runs each TEST_F as its
    // own process, so a shared directory would race under `ctest -j`.
    dir_ = new std::string(
        (fs::path(::testing::TempDir()) /
         ("train_parity-" + std::to_string(::getpid())))
            .string());
    fs::remove_all(*dir_);
    fs::create_directories(*dir_);
    ASSERT_TRUE(
        corpus::WriteCorpusShards(*corpus_, *dir_, "corpus", /*shard_size=*/7)
            .ok());

    // Reference: the legacy fully-in-memory Train, over the reloaded shard
    // bytes — exactly what the streaming variants will read.
    config_ = new BriqConfig();
    loaded_ = new corpus::Corpus();
    auto loaded = corpus::LoadShardedCorpus(*dir_, "corpus");
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    *loaded_ = std::move(loaded).value();
    prepared_ = new std::vector<PreparedDocument>();
    for (const corpus::Document& d : loaded_->documents) {
      prepared_->push_back(core::PrepareDocument(d, *config_));
    }
    std::vector<const PreparedDocument*> train;
    for (const auto& d : *prepared_) train.push_back(&d);
    reference_ = new BriqSystem(*config_);
    ASSERT_TRUE(reference_->Train(train).ok());
    reference_signature_ = new std::vector<double>(Signature(*reference_));
  }

  static void TearDownTestSuite() {
    fs::remove_all(*dir_);
    delete reference_signature_;
    delete reference_;
    delete prepared_;
    delete loaded_;
    delete config_;
    delete dir_;
    delete corpus_;
  }

  /// Every prediction the trained components make over the corpus, flat:
  /// per text mention the tagger's function id and confidence, per
  /// (text, table) pair the classifier score. Two systems whose forests
  /// are bit-identical produce the exact same vector.
  static std::vector<double> Signature(const BriqSystem& system) {
    std::vector<double> out;
    for (const PreparedDocument& doc : *prepared_) {
      core::FeatureComputer features(doc, *config_);
      for (size_t t = 0; t < doc.text_mentions.size(); ++t) {
        const auto tag = system.tagger().Predict(doc, t);
        out.push_back(static_cast<double>(static_cast<int>(tag.func)));
        out.push_back(tag.confidence);
        for (size_t c = 0; c < doc.table_mentions.size(); ++c) {
          out.push_back(system.classifier().Score(features, t, c));
        }
      }
    }
    return out;
  }

  static void ExpectMatchesReference(const BriqSystem& system,
                                     const std::string& context) {
    ASSERT_TRUE(system.trained()) << context;
    const std::vector<double> signature = Signature(system);
    ASSERT_EQ(signature.size(), reference_signature_->size()) << context;
    for (size_t i = 0; i < signature.size(); ++i) {
      // Exact double equality: streaming must not perturb a bit.
      ASSERT_EQ(signature[i], (*reference_signature_)[i])
          << context << " prediction " << i;
    }
    // Table I bookkeeping must survive the refactor too.
    EXPECT_EQ(system.classifier().stats().total_positives,
              reference_->classifier().stats().total_positives)
        << context;
    EXPECT_EQ(system.classifier().stats().total_negatives,
              reference_->classifier().stats().total_negatives)
        << context;
  }

  /// Pid-and-tag-keyed scratch dir for spill files and reshards.
  static std::string ScratchDir(const std::string& tag) {
    const std::string path = *dir_ + "/" + tag;
    fs::create_directories(path);
    return path;
  }

  static corpus::Corpus* corpus_;
  static std::string* dir_;
  static BriqConfig* config_;
  static corpus::Corpus* loaded_;
  static std::vector<PreparedDocument>* prepared_;
  static BriqSystem* reference_;
  static std::vector<double>* reference_signature_;
};

corpus::Corpus* TrainParityTest::corpus_ = nullptr;
std::string* TrainParityTest::dir_ = nullptr;
BriqConfig* TrainParityTest::config_ = nullptr;
corpus::Corpus* TrainParityTest::loaded_ = nullptr;
std::vector<PreparedDocument>* TrainParityTest::prepared_ = nullptr;
BriqSystem* TrainParityTest::reference_ = nullptr;
std::vector<double>* TrainParityTest::reference_signature_ = nullptr;

TEST_F(TrainParityTest, StreamingMatchesLegacyAcrossShardSizesAndThreads) {
  const size_t whole = corpus_->size();
  for (size_t shard_size : {size_t{1}, size_t{7}, whole}) {
    const std::string dir = ScratchDir("s" + std::to_string(shard_size));
    ASSERT_TRUE(
        corpus::WriteCorpusShards(*corpus_, dir, "corpus", shard_size).ok());
    for (int threads : {1, 4}) {
      const std::string context = "shard_size=" + std::to_string(shard_size) +
                                  " threads=" + std::to_string(threads);
      StreamingTrainOptions options;
      options.num_threads = threads;
      options.queue_capacity = 5;  // smaller than the corpus: forces
                                   // back-pressure and reordering
      BriqSystem system(*config_);
      util::Status status =
          TrainOnShardedCorpus(&system, dir, "corpus", options);
      ASSERT_TRUE(status.ok()) << context << ": " << status.ToString();
      ExpectMatchesReference(system, context);
    }
  }
}

TEST_F(TrainParityTest, SpilledTrainingMatchesLegacy) {
  for (int threads : {1, 4}) {
    const std::string context = "spilled threads=" + std::to_string(threads);
    StreamingTrainOptions options;
    options.num_threads = threads;
    options.queue_capacity = 5;
    options.spill_dir = ScratchDir("spill" + std::to_string(threads));
    BriqSystem system(*config_);
    util::Status status = TrainOnShardedCorpus(&system, *dir_, "corpus", options);
    ASSERT_TRUE(status.ok()) << context << ": " << status.ToString();
    // The spill files exist and carry every emitted sample.
    EXPECT_TRUE(fs::exists(options.spill_dir + "/classifier.samples"))
        << context;
    EXPECT_TRUE(fs::exists(options.spill_dir + "/tagger.samples")) << context;
    ExpectMatchesReference(system, context);
  }
}

TEST_F(TrainParityTest, ReservoirCapIsSeedDeterministic) {
  // A capped run subsamples, so it cannot equal the uncapped reference —
  // but the same seed (from the config) must reproduce it bit for bit.
  auto run = [&](const std::string& tag) {
    StreamingTrainOptions options;
    options.num_threads = 2;
    options.spill_dir = ScratchDir("cap-" + tag);
    options.max_classifier_samples = 64;
    options.max_tagger_samples = 64;
    BriqSystem system(*config_);
    util::Status status = TrainOnShardedCorpus(&system, *dir_, "corpus", options);
    EXPECT_TRUE(status.ok()) << status.ToString();
    return Signature(system);
  };
  const std::vector<double> a = run("a");
  const std::vector<double> b = run("b");
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "prediction " << i;
  }
}

TEST_F(TrainParityTest, ModelRoundTripPreservesEveryPrediction) {
  const std::string model = ScratchDir("model") + "/model.bin";
  ASSERT_TRUE(reference_->SaveModel(model).ok());

  BriqSystem restored(*config_);
  ASSERT_FALSE(restored.trained());
  util::Status status = restored.LoadModel(model);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ExpectMatchesReference(restored, "model round trip");

  // An untrained system refuses to save.
  BriqSystem untrained(*config_);
  EXPECT_EQ(untrained.SaveModel(model + ".none").code(),
            util::StatusCode::kFailedPrecondition);

  // Fault injection: a flipped payload byte fails the checksum, a
  // truncated file fails before that, and neither clobbers the target
  // system's already-loaded state.
  {
    std::fstream f(model, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(200);
    char byte = 0;
    f.seekg(200);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(200);
    f.write(&byte, 1);
  }
  EXPECT_FALSE(restored.LoadModel(model).ok());
  ExpectMatchesReference(restored, "after rejected corrupt load");

  const std::string truncated = ScratchDir("model") + "/truncated.bin";
  ASSERT_TRUE(reference_->SaveModel(truncated).ok());
  fs::resize_file(truncated, fs::file_size(truncated) / 2);
  EXPECT_FALSE(restored.LoadModel(truncated).ok());

  // A model trained under a different ablation mask is rejected up front.
  ASSERT_TRUE(reference_->SaveModel(model).ok());
  BriqConfig ablated = *config_;
  ablated.active_features = {0, 3};
  BriqSystem mismatched(ablated);
  EXPECT_EQ(mismatched.LoadModel(model).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST_F(TrainParityTest, EmptyAndFailingSourcesSurfaceErrors) {
  // Zero documents: same InvalidArgument contract as BriqSystem::Train.
  BriqSystem system(*config_);
  StreamingTrainer trainer(&system, StreamingTrainOptions{});
  util::Status status = trainer.Train(
      []() -> util::Result<std::optional<corpus::Document>> {
        return std::optional<corpus::Document>(std::nullopt);
      });
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_FALSE(system.trained());

  // A source error aborts the run and propagates, at any thread count.
  for (int threads : {1, 4}) {
    StreamingTrainOptions options;
    options.num_threads = threads;
    options.queue_capacity = 2;
    StreamingTrainer failing(&system, options);
    size_t cursor = 0;
    status = failing.Train(
        [&]() -> util::Result<std::optional<corpus::Document>> {
          if (cursor >= 5) {
            return util::Status::ParseError("injected source failure");
          }
          return std::optional<corpus::Document>(
              corpus_->documents[cursor++]);
        });
    ASSERT_FALSE(status.ok()) << "threads=" << threads;
    EXPECT_EQ(status.code(), util::StatusCode::kParseError)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace briq
