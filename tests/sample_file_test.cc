// briq-samples-v1 spill files (util/sample_file.h) and the SampleSink /
// SampleSource layer above them (ml/sample_sink.h): bit-exact round trips,
// fault injection on truncated/corrupted/foreign files, and the seeded
// reservoir's determinism.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ml/sample_sink.h"
#include "util/sample_file.h"

namespace briq {
namespace {

namespace fs = std::filesystem;

/// Per-process scratch path: gtest_discover_tests runs every TEST as its
/// own process, so pid-keyed names cannot collide under `ctest -j`.
std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) /
          (name + "-" + std::to_string(::getpid()) + ".samples"))
      .string();
}

/// A value whose double representation exercises non-trivial mantissa
/// bits, so "bit-exact" actually means something.
double Wobble(size_t i, int f) {
  return std::sin(static_cast<double>(i * 31 + f)) * 1e6 + 1.0 / 3.0;
}

std::vector<double> Row(size_t i, int num_features) {
  std::vector<double> x(static_cast<size_t>(num_features));
  for (int f = 0; f < num_features; ++f) x[static_cast<size_t>(f)] = Wobble(i, f);
  return x;
}

void WriteFile(const std::string& path, int num_features, size_t rows) {
  util::SampleFileWriter writer(path, num_features);
  for (size_t i = 0; i < rows; ++i) {
    ASSERT_TRUE(
        writer.Append(Row(i, num_features).data(), static_cast<int32_t>(i % 3),
                      0.25 * static_cast<double>(i + 1))
            .ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
}

TEST(SampleFileTest, RoundTripIsBitExact) {
  const std::string path = TempPath("roundtrip");
  WriteFile(path, 5, 37);

  auto reader = util::SampleFileReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->num_features(), 5);
  ASSERT_EQ(reader->num_rows(), 37u);
  std::vector<double> x(5);
  int32_t label = 0;
  double weight = 0.0;
  // Read out of order: rows are addressable, not just scannable.
  for (size_t i : {size_t{36}, size_t{0}, size_t{17}}) {
    ASSERT_TRUE(reader->Read(i, x.data(), &label, &weight).ok());
    const std::vector<double> expected = Row(i, 5);
    for (int f = 0; f < 5; ++f) {
      EXPECT_EQ(x[static_cast<size_t>(f)], expected[static_cast<size_t>(f)])
          << "row " << i << " feature " << f;
    }
    EXPECT_EQ(label, static_cast<int32_t>(i % 3));
    EXPECT_EQ(weight, 0.25 * static_cast<double>(i + 1));
  }
  fs::remove(path);
}

TEST(SampleFileTest, EmptyFileRoundTrips) {
  const std::string path = TempPath("empty");
  WriteFile(path, 3, 0);
  auto reader = util::SampleFileReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->num_rows(), 0u);
  fs::remove(path);
}

TEST(SampleFileTest, TruncatedFileIsRejected) {
  const std::string path = TempPath("truncated");
  WriteFile(path, 4, 10);
  const auto full_size = fs::file_size(path);
  fs::resize_file(path, full_size - 7);
  auto reader = util::SampleFileReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().ToString().find("truncated"), std::string::npos)
      << reader.status().ToString();
  fs::remove(path);
}

TEST(SampleFileTest, CorruptedByteFailsChecksum) {
  const std::string path = TempPath("corrupt");
  WriteFile(path, 4, 10);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    // Flip one byte in the middle of the row region (past the 40-byte
    // header), keeping the size intact.
    f.seekp(40 + 3 * 44 + 11);
    char byte = 0;
    f.seekg(40 + 3 * 44 + 11);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(40 + 3 * 44 + 11);
    f.write(&byte, 1);
  }
  auto reader = util::SampleFileReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().ToString().find("checksum"), std::string::npos)
      << reader.status().ToString();
  fs::remove(path);
}

TEST(SampleFileTest, ForeignFileIsRejected) {
  const std::string path = TempPath("foreign");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a sample file, it just lives where one should\n";
  }
  auto reader = util::SampleFileReader::Open(path);
  ASSERT_FALSE(reader.ok());
  fs::remove(path);

  auto missing = util::SampleFileReader::Open(path + ".does-not-exist");
  ASSERT_FALSE(missing.ok());
}

TEST(SampleFileTest, UnfinishedWriterFailsValidation) {
  const std::string path = TempPath("unfinished");
  {
    util::SampleFileWriter writer(path, 2);
    const double x[2] = {1.0, 2.0};
    ASSERT_TRUE(writer.Append(x, 1, 1.0).ok());
    // No Finish(): the header still declares 0 rows / no checksum.
  }
  auto reader = util::SampleFileReader::Open(path);
  ASSERT_FALSE(reader.ok());
  fs::remove(path);
}

TEST(SampleSinkTest, SpillMatchesInMemoryBitExact) {
  const std::string path = TempPath("spill-parity");
  const int nf = 6;
  ml::InMemorySampleSink mem(nf);
  ml::SpillSampleSink spill(ml::SpillSinkOptions{path, 0, 0}, nf);
  for (size_t i = 0; i < 25; ++i) {
    const std::vector<double> x = Row(i, nf);
    const int label = static_cast<int>(i % 2);
    const double w = 1.0 + 0.5 * static_cast<double>(i);
    ASSERT_TRUE(mem.Add(x.data(), label, w).ok());
    ASSERT_TRUE(spill.Add(x.data(), label, w).ok());
  }
  ASSERT_TRUE(mem.Finish().ok());
  ASSERT_TRUE(spill.Finish().ok());
  EXPECT_EQ(spill.samples_retained(), 25u);
  EXPECT_GT(spill.bytes_written(), 0u);

  auto spilled = ml::SpilledSampleSource::Open(path);
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
  ml::DatasetSampleSource in_memory(&mem.dataset());
  ASSERT_EQ(spilled->size(), in_memory.size());
  ASSERT_EQ(spilled->num_features(), in_memory.num_features());
  std::vector<double> xa(nf), xb(nf);
  int la = 0, lb = 0;
  double wa = 0.0, wb = 0.0;
  for (size_t i = 0; i < in_memory.size(); ++i) {
    ASSERT_TRUE(in_memory.Read(i, xa.data(), &la, &wa).ok());
    ASSERT_TRUE(spilled->Read(i, xb.data(), &lb, &wb).ok());
    for (int f = 0; f < nf; ++f) {
      EXPECT_EQ(xa[static_cast<size_t>(f)], xb[static_cast<size_t>(f)]);
    }
    EXPECT_EQ(la, lb);
    EXPECT_EQ(wa, wb);
  }
  fs::remove(path);
}

TEST(SampleSinkTest, ReservoirIsSeedDeterministicAndBounded) {
  const int nf = 3;
  const size_t total = 200;
  const size_t cap = 16;
  auto run = [&](uint64_t seed, const std::string& tag) {
    const std::string path = TempPath("reservoir-" + tag);
    ml::SpillSampleSink sink(ml::SpillSinkOptions{path, cap, seed}, nf);
    for (size_t i = 0; i < total; ++i) {
      const std::vector<double> x = Row(i, nf);
      EXPECT_TRUE(sink.Add(x.data(), static_cast<int>(i % 4), 1.0).ok());
    }
    EXPECT_TRUE(sink.Finish().ok());
    EXPECT_EQ(sink.samples_seen(), total);
    EXPECT_EQ(sink.samples_retained(), cap);
    // Return the retained rows' first features as the subsample signature.
    auto source = ml::SpilledSampleSource::Open(path);
    EXPECT_TRUE(source.ok()) << source.status().ToString();
    std::vector<double> signature;
    std::vector<double> x(nf);
    int label = 0;
    double weight = 0.0;
    for (size_t i = 0; i < source->size(); ++i) {
      EXPECT_TRUE(source->Read(i, x.data(), &label, &weight).ok());
      signature.push_back(x[0]);
    }
    fs::remove(path);
    return signature;
  };
  const std::vector<double> a = run(42, "a");
  const std::vector<double> b = run(42, "b");
  const std::vector<double> c = run(43, "c");
  EXPECT_EQ(a, b);  // same seed, same subsample, bit for bit
  EXPECT_NE(a, c);  // different seed draws a different reservoir
}

}  // namespace
}  // namespace briq
