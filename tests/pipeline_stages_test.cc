// Stage-level tests of the BriQ pipeline: tagger, classifier, adaptive
// filter, and global resolution — each trained/exercised on a small
// synthetic corpus plus the paper's example documents.

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/evaluation.h"
#include "core/gt_matching.h"
#include "core/pipeline.h"
#include "corpus/generator.h"
#include "corpus/paper_examples.h"
#include "obs/metrics.h"

namespace briq::core {
namespace {

using table::AggregateFunction;

class StageTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new BriqConfig();
    corpus::CorpusOptions options;
    options.num_documents = 80;
    options.seed = 404;
    corpus_ = new corpus::Corpus(corpus::GenerateCorpus(options));
    prepared_ = new std::vector<PreparedDocument>();
    for (const auto& d : corpus_->documents) {
      prepared_->push_back(PrepareDocument(d, *config_));
    }
    pointers_ = new std::vector<const PreparedDocument*>();
    for (const auto& d : *prepared_) pointers_->push_back(&d);
    system_ = new BriqSystem(*config_);
    ASSERT_TRUE(system_->Train(*pointers_).ok());
  }
  static void TearDownTestSuite() {
    delete system_;
    delete pointers_;
    delete prepared_;
    delete corpus_;
    delete config_;
  }

  static BriqConfig* config_;
  static corpus::Corpus* corpus_;
  static std::vector<PreparedDocument>* prepared_;
  static std::vector<const PreparedDocument*>* pointers_;
  static BriqSystem* system_;
};

BriqConfig* StageTest::config_ = nullptr;
corpus::Corpus* StageTest::corpus_ = nullptr;
std::vector<PreparedDocument>* StageTest::prepared_ = nullptr;
std::vector<const PreparedDocument*>* StageTest::pointers_ = nullptr;
BriqSystem* StageTest::system_ = nullptr;

// ---------------------------------------------------------------------------
// Tagger
// ---------------------------------------------------------------------------

TEST_F(StageTest, TaggerIsTrained) {
  EXPECT_TRUE(system_->tagger().trained());
}

TEST_F(StageTest, TaggerRecognizesSumMentions) {
  corpus::Document doc = corpus::Figure1aHealth();
  PreparedDocument prepared = PrepareDocument(doc, *config_);
  auto matched = MatchGroundTruth(prepared);
  // "123" is a sum mention ("A total of 123 patients").
  for (const auto& m : matched) {
    if (m.gt->surface == "123") {
      ASSERT_GE(m.text_idx, 0);
      auto tag = system_->tagger().Predict(prepared, m.text_idx);
      EXPECT_EQ(tag.func, AggregateFunction::kSum);
    }
  }
}

TEST_F(StageTest, TaggerPrecisionOnSingles) {
  // Mentions without cues must overwhelmingly tag single-cell, because a
  // wrong aggregate tag prunes the correct single-cell pairs' competitors
  // only — but a wrongly-tagged aggregate mention loses its target.
  size_t singles = 0;
  size_t tagged_single = 0;
  for (const auto& doc : *prepared_) {
    for (const auto& m : MatchGroundTruth(doc)) {
      if (m.text_idx < 0) continue;
      if (m.gt->target.func != AggregateFunction::kNone) continue;
      ++singles;
      auto tag = system_->tagger().Predict(doc, m.text_idx);
      if (tag.func == AggregateFunction::kNone) ++tagged_single;
    }
  }
  ASSERT_GT(singles, 20u);
  EXPECT_GT(static_cast<double>(tagged_single) / singles, 0.9);
}

TEST_F(StageTest, UntrainedTaggerFallsBackToCues) {
  TextMentionTagger untrained(config_);
  corpus::Document doc = corpus::Figure1aHealth();
  PreparedDocument prepared = PrepareDocument(doc, *config_);
  auto matched = MatchGroundTruth(prepared);
  for (const auto& m : matched) {
    if (m.gt->surface == "123" && m.text_idx >= 0) {
      EXPECT_EQ(untrained.Predict(prepared, m.text_idx).func,
                AggregateFunction::kSum);
    }
  }
}

TEST_F(StageTest, TaggerFeatureCount) {
  corpus::Document doc = corpus::Figure1aHealth();
  PreparedDocument prepared = PrepareDocument(doc, *config_);
  auto f = TextMentionTagger::Features(prepared, 0, *config_);
  EXPECT_EQ(f.size(), static_cast<size_t>(TextMentionTagger::kNumFeatures));
}

// ---------------------------------------------------------------------------
// Classifier
// ---------------------------------------------------------------------------

TEST_F(StageTest, ClassifierScoresGoldAboveRandom) {
  corpus::Document doc = corpus::Figure1aHealth();
  PreparedDocument prepared = PrepareDocument(doc, *config_);
  FeatureComputer features(prepared, *config_);
  const auto& classifier = system_->classifier();

  size_t wins = 0;
  size_t comparisons = 0;
  for (const auto& m : MatchGroundTruth(prepared)) {
    if (m.text_idx < 0 || m.table_idx < 0) continue;
    double gold = classifier.Score(features, m.text_idx, m.table_idx);
    for (size_t j = 0; j < prepared.table_mentions.size(); j += 7) {
      if (static_cast<int>(j) == m.table_idx) continue;
      ++comparisons;
      if (gold > classifier.Score(features, m.text_idx, j)) ++wins;
    }
  }
  ASSERT_GT(comparisons, 0u);
  EXPECT_GT(static_cast<double>(wins) / comparisons, 0.85);
}

TEST_F(StageTest, TrainingStatsShapeMatchesTableI) {
  const auto& stats = system_->classifier().stats();
  EXPECT_GT(stats.total_positives, 0u);
  // ~5 negatives per positive.
  EXPECT_GE(stats.total_negatives, 4 * stats.total_positives);
  // Single-cell dominates positives.
  auto it = stats.positives.find(AggregateFunction::kNone);
  ASSERT_NE(it, stats.positives.end());
  EXPECT_GT(it->second * 2, stats.total_positives);
}

// ---------------------------------------------------------------------------
// Adaptive filter
// ---------------------------------------------------------------------------

TEST_F(StageTest, FilterShrinksCandidateSpaceByOrdersOfMagnitude) {
  FilterTrace trace;
  for (const auto& doc : *prepared_) {
    system_->AlignWithTrace(doc, &trace);
  }
  ASSERT_GT(trace.overall.pairs_before, 0u);
  // Paper Table VI: selectivity ~0.01.
  EXPECT_LT(trace.overall.Selectivity(), 0.05);
  // ...without losing the gold pairs.
  EXPECT_GT(trace.overall.Recall(), 0.85);
}

TEST_F(StageTest, FilterKeepsSortedBoundedCandidates) {
  FeatureComputer features((*prepared_)[0], *config_);
  AdaptiveFilter filter(config_, &system_->tagger(), &system_->classifier());
  auto candidates = filter.Filter((*prepared_)[0], features, nullptr);
  ASSERT_EQ(candidates.size(), (*prepared_)[0].text_mentions.size());
  const int max_k =
      std::max({config_->top_k_exact, config_->top_k_approx,
                config_->top_k_high_entropy});
  for (const auto& list : candidates) {
    EXPECT_LE(list.size(), static_cast<size_t>(max_k));
    for (size_t i = 1; i < list.size(); ++i) {
      EXPECT_GE(list[i - 1].score, list[i].score);  // sorted descending
    }
  }
}

TEST_F(StageTest, EntropyPercentileModeDefaultsOffWithExactParity) {
  // The adaptive-threshold knob ships disabled...
  EXPECT_EQ(config_->entropy_percentile_topk, 0.0);
  const auto& doc = (*prepared_)[0];
  FeatureComputer features(doc, *config_);
  AdaptiveFilter filter(config_, &system_->tagger(), &system_->classifier());
  obs::MetricRegistry::Global().Reset();
  const auto baseline = filter.Filter(doc, features, nullptr);

  // ...and even when enabled, a freshly reset entropy histogram has too
  // few samples, so the fixed threshold applies and the candidate lists
  // are identical to the default configuration's.
  BriqConfig percentile_config = *config_;
  percentile_config.entropy_percentile_topk = 0.5;
  AdaptiveFilter percentile_filter(&percentile_config, &system_->tagger(),
                                   &system_->classifier());
  obs::MetricRegistry::Global().Reset();
  const auto fallback = percentile_filter.Filter(doc, features, nullptr);

  ASSERT_EQ(fallback.size(), baseline.size());
  for (size_t x = 0; x < baseline.size(); ++x) {
    ASSERT_EQ(fallback[x].size(), baseline[x].size()) << "mention " << x;
    for (size_t i = 0; i < baseline[x].size(); ++i) {
      EXPECT_EQ(fallback[x][i].table_idx, baseline[x][i].table_idx);
      EXPECT_DOUBLE_EQ(fallback[x][i].score, baseline[x][i].score);
    }
  }
  obs::MetricRegistry::Global().Reset();
}

#ifndef BRIQ_NO_METRICS
TEST_F(StageTest, EntropyPercentileThresholdAdaptsToObservedEntropies) {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.Reset();
  obs::Histogram* entropy = registry.GetHistogram(
      "briq.filter.classifier_entropy", obs::LinearBuckets(0.1, 0.1, 10));
  // Prime the corpus distribution with high entropies: the median lands on
  // the top (le=1.0) edge, above every real normalized entropy, so every
  // mention reads as low-entropy-relative-to-corpus and keeps at most
  // top_k_low_entropy candidates.
  for (int i = 0; i < 64; ++i) entropy->Observe(0.95);

  BriqConfig config = *config_;
  config.entropy_percentile_topk = 0.5;
  const auto& doc = (*prepared_)[0];
  FeatureComputer features(doc, config);
  AdaptiveFilter filter(&config, &system_->tagger(), &system_->classifier());
  const auto candidates = filter.Filter(doc, features, nullptr);
  for (const auto& list : candidates) {
    EXPECT_LE(list.size(), static_cast<size_t>(config.top_k_low_entropy));
  }
  registry.Reset();
}
#endif  // BRIQ_NO_METRICS

TEST_F(StageTest, UnitMismatchPairsPruned) {
  // Any surviving candidate with both units set must agree on the unit.
  FeatureComputer features((*prepared_)[0], *config_);
  AdaptiveFilter filter(config_, &system_->tagger(), &system_->classifier());
  auto candidates = filter.Filter((*prepared_)[0], features, nullptr);
  const auto& doc = (*prepared_)[0];
  for (const auto& list : candidates) {
    for (const Candidate& c : list) {
      const auto& x = doc.text_mentions[c.text_idx].q;
      const auto& t = doc.table_mentions[c.table_idx];
      if (x.has_unit() && t.has_unit()) {
        EXPECT_EQ(x.unit, t.unit);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Global resolution
// ---------------------------------------------------------------------------

TEST_F(StageTest, ResolutionAlignsAtMostOnePerMention) {
  for (const auto& doc : *prepared_) {
    DocumentAlignment a = system_->Align(doc);
    std::set<int> seen;
    for (const auto& d : a.decisions) {
      EXPECT_TRUE(seen.insert(d.text_idx).second)
          << "text mention aligned twice";
      EXPECT_GE(d.table_idx, 0);
      EXPECT_LT(d.table_idx,
                static_cast<int>(doc.table_mentions.size()));
      EXPECT_GT(d.score, config_->epsilon);
    }
  }
}

TEST_F(StageTest, ResolutionIsDeterministic) {
  DocumentAlignment a = system_->Align((*prepared_)[0]);
  DocumentAlignment b = system_->Align((*prepared_)[0]);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].text_idx, b.decisions[i].text_idx);
    EXPECT_EQ(a.decisions[i].table_idx, b.decisions[i].table_idx);
  }
}

TEST_F(StageTest, PaperFigure1aAligned) {
  corpus::Document doc = corpus::Figure1aHealth();
  PreparedDocument prepared = PrepareDocument(doc, *config_);
  EvalResult r = EvaluateDocument(prepared, system_->Align(prepared));
  // The flagship example: all five mentions (1 sum of a column, 2 more
  // sums, 2 single cells) — require at least 4 of 5 correct.
  EXPECT_GE(r.overall.true_positives, 4u);
}

TEST_F(StageTest, RfBaselineAlwaysOutputsOnePerMention) {
  const auto& doc = (*prepared_)[0];
  RfOnlyAligner rf(system_);
  DocumentAlignment a = rf.Align(doc);
  EXPECT_EQ(a.decisions.size(), doc.text_mentions.size());
}

TEST_F(StageTest, RwrBaselineRunsUnsupervised) {
  RwrOnlyAligner rwr(config_);
  DocumentAlignment a = rwr.Align((*prepared_)[0]);
  // Sanity: decisions reference valid mentions.
  for (const auto& d : a.decisions) {
    EXPECT_GE(d.text_idx, 0);
    EXPECT_LT(static_cast<size_t>(d.table_idx),
              (*prepared_)[0].table_mentions.size());
  }
}

// ---------------------------------------------------------------------------
// Evaluation accounting
// ---------------------------------------------------------------------------

TEST_F(StageTest, EvaluationCountsAddUp) {
  const auto& doc = (*prepared_)[0];
  DocumentAlignment a = system_->Align(doc);
  EvalResult r = EvaluateDocument(doc, a);
  // TP + FP == decisions; TP + FN == ground truth.
  EXPECT_EQ(r.overall.true_positives + r.overall.false_positives,
            a.decisions.size());
  EXPECT_EQ(r.overall.true_positives + r.overall.false_negatives,
            doc.source->ground_truth.size());
}

TEST_F(StageTest, EvaluationMergeAccumulates) {
  EvalResult a = EvaluateDocument((*prepared_)[0],
                                  system_->Align((*prepared_)[0]));
  EvalResult b = EvaluateDocument((*prepared_)[1],
                                  system_->Align((*prepared_)[1]));
  EvalResult merged = a;
  merged.Merge(b);
  EXPECT_EQ(merged.overall.true_positives,
            a.overall.true_positives + b.overall.true_positives);
  EXPECT_EQ(merged.overall.false_negatives,
            a.overall.false_negatives + b.overall.false_negatives);
}

TEST(EvaluationTest, PerfectAndEmptyAlignments) {
  corpus::Document doc = corpus::Figure1aHealth();
  BriqConfig config;
  PreparedDocument prepared = PrepareDocument(doc, config);
  auto matched = MatchGroundTruth(prepared);

  DocumentAlignment perfect;
  for (const auto& m : matched) {
    perfect.decisions.push_back({m.text_idx, m.table_idx, 1.0});
  }
  EvalResult r = EvaluateDocument(prepared, perfect);
  EXPECT_DOUBLE_EQ(r.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(r.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(r.F1(), 1.0);

  EvalResult empty = EvaluateDocument(prepared, DocumentAlignment{});
  EXPECT_DOUBLE_EQ(empty.Recall(), 0.0);
  EXPECT_EQ(empty.overall.false_negatives, matched.size());
}

}  // namespace
}  // namespace briq::core
