#include "util/logging.h"

#include <gtest/gtest.h>

#include <atomic>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace briq::util {
namespace {

// Captures everything written to std::cerr while alive.
class CerrCapture {
 public:
  CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(old_); }

  std::string str() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (std::string::size_type pos = haystack.find(needle);
       pos != std::string::npos; pos = haystack.find(needle, pos + 1)) {
    ++count;
  }
  return count;
}

// Restores the default threshold so tests don't leak state into each other.
class LoggingTest : public ::testing::Test {
 protected:
  ~LoggingTest() override { SetLogThreshold(LogLevel::kInfo); }
};

TEST_F(LoggingTest, ThresholdRoundTrip) {
  EXPECT_EQ(GetLogThreshold(), LogLevel::kInfo);
  SetLogThreshold(LogLevel::kError);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);
  SetLogThreshold(LogLevel::kDebug);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kDebug);
}

TEST_F(LoggingTest, ThresholdSuppressesLowerLevels) {
  SetLogThreshold(LogLevel::kWarning);
  CerrCapture capture;
  BRIQ_LOG(Info) << "info-dropped";
  BRIQ_LOG(Warning) << "warn-kept";
  BRIQ_LOG(Error) << "error-kept";
  const std::string out = capture.str();
  EXPECT_EQ(out.find("info-dropped"), std::string::npos);
  EXPECT_NE(out.find("warn-kept"), std::string::npos);
  EXPECT_NE(out.find("error-kept"), std::string::npos);
}

TEST_F(LoggingTest, LogEveryNEmitsFirstThenEveryNth) {
  CerrCapture capture;
  for (int i = 0; i < 10; ++i) {
    BRIQ_LOG_EVERY_N(Info, 3) << "sampled-line " << i;
  }
  // Occurrences 0, 3, 6, 9 emit: four lines.
  EXPECT_EQ(CountOccurrences(capture.str(), "sampled-line"), 4);
}

TEST_F(LoggingTest, LogEveryNSitesCountIndependently) {
  CerrCapture capture;
  for (int i = 0; i < 4; ++i) {
    BRIQ_LOG_EVERY_N(Info, 100) << "site-a";
    BRIQ_LOG_EVERY_N(Info, 100) << "site-b";
  }
  // Each site emits only its own first occurrence.
  const std::string out = capture.str();
  EXPECT_EQ(CountOccurrences(out, "site-a"), 1);
  EXPECT_EQ(CountOccurrences(out, "site-b"), 1);
}

TEST_F(LoggingTest, ConcurrentThresholdUpdatesAndLogging) {
  // Exercises the atomic threshold under contention; run under TSan this
  // is the regression test for the previously-racy plain global.
  CerrCapture capture;
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    for (int i = 0; i < 2000; ++i) {
      SetLogThreshold(i % 2 == 0 ? LogLevel::kDebug : LogLevel::kError);
    }
    stop.store(true);
  });
  std::vector<std::thread> loggers;
  for (int t = 0; t < 3; ++t) {
    loggers.emplace_back([&] {
      while (!stop.load()) {
        BRIQ_LOG(Info) << "contended";
        BRIQ_LOG_EVERY_N(Warning, 7) << "contended-sampled";
      }
    });
  }
  toggler.join();
  for (auto& th : loggers) th.join();
  SUCCEED();
}

}  // namespace
}  // namespace briq::util
