#include "html/table_extractor.h"

#include <gtest/gtest.h>

#include "html/page_segmenter.h"

namespace briq::html {
namespace {

TEST(TableExtractorTest, BasicTable) {
  auto tables = ExtractTables(
      "<table><tr><th>a</th><th>b</th></tr>"
      "<tr><td>1</td><td>2</td></tr></table>");
  ASSERT_EQ(tables.size(), 1u);
  const table::Table& t = tables[0];
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.num_cols(), 2);
  EXPECT_TRUE(t.has_header_row());
  EXPECT_EQ(t.cell(1, 0).raw, "1");
  EXPECT_TRUE(t.cell(1, 0).numeric());
}

TEST(TableExtractorTest, CaptionExtracted) {
  auto tables = ExtractTables(
      "<table><caption>Income gains (in Mio)</caption>"
      "<tr><th>x</th><th>2013</th></tr>"
      "<tr><th>Total</th><td>3,263</td></tr></table>");
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0].caption(), "Income gains (in Mio)");
  // Caption scale applied during annotation.
  EXPECT_DOUBLE_EQ(tables[0].cell(1, 1).quantity->value, 3.263e9);
}

TEST(TableExtractorTest, TheadTbodyRows) {
  auto tables = ExtractTables(
      "<table><thead><tr><th>h</th></tr></thead>"
      "<tbody><tr><td>1</td></tr><tr><td>2</td></tr></tbody></table>");
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0].num_rows(), 3);
}

TEST(TableExtractorTest, ColspanExpansion) {
  auto tables = ExtractTables(
      "<table><tr><td colspan=\"2\">wide</td><td>x</td></tr>"
      "<tr><td>a</td><td>b</td><td>c</td></tr></table>");
  ASSERT_EQ(tables.size(), 1u);
  const table::Table& t = tables[0];
  EXPECT_EQ(t.num_cols(), 3);
  EXPECT_EQ(t.cell(0, 0).raw, "wide");
  EXPECT_EQ(t.cell(0, 1).raw, "wide");  // spanned copy
  EXPECT_EQ(t.cell(0, 2).raw, "x");
}

TEST(TableExtractorTest, RowspanExpansion) {
  auto tables = ExtractTables(
      "<table><tr><td rowspan=\"2\">tall</td><td>a</td></tr>"
      "<tr><td>b</td></tr></table>");
  ASSERT_EQ(tables.size(), 1u);
  const table::Table& t = tables[0];
  EXPECT_EQ(t.cell(0, 0).raw, "tall");
  EXPECT_EQ(t.cell(1, 0).raw, "tall");
  EXPECT_EQ(t.cell(1, 1).raw, "b");
}

TEST(TableExtractorTest, FirstColumnThMarksHeaderColumn) {
  auto tables = ExtractTables(
      "<table><tr><th>h1</th><th>h2</th></tr>"
      "<tr><th>German MSRP</th><td>34900</td></tr>"
      "<tr><th>Emission</th><td>0</td></tr></table>");
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_TRUE(tables[0].has_header_row());
  EXPECT_TRUE(tables[0].has_header_col());
}

TEST(TableExtractorTest, HeuristicHeaderWithoutTh) {
  auto tables = ExtractTables(
      "<table><tr><td>name</td><td>count</td></tr>"
      "<tr><td>Rash</td><td>35</td></tr>"
      "<tr><td>Nausea</td><td>11</td></tr></table>");
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_TRUE(tables[0].has_header_row());
}

TEST(TableExtractorTest, EmptyTableSkipped) {
  EXPECT_TRUE(ExtractTables("<table></table>").empty());
  EXPECT_TRUE(ExtractTables("no tables here").empty());
}

TEST(TableExtractorTest, NestedTablesExtractedSeparately) {
  auto tables = ExtractTables(
      "<table><tr><td><table><tr><td>9</td></tr></table></td>"
      "<td>1</td></tr></table>");
  EXPECT_EQ(tables.size(), 2u);
}

TEST(PageSegmenterTest, ParagraphsTablesHeadingsInOrder) {
  Page page = SegmentPage(
      "<html><head><title>Report</title></head><body>"
      "<h2>Results</h2>"
      "<p>First paragraph with 42 things.</p>"
      "<table><tr><th>a</th></tr><tr><td>1</td></tr></table>"
      "<p>Second paragraph.</p>"
      "</body></html>");
  EXPECT_EQ(page.title, "Report");
  ASSERT_EQ(page.blocks.size(), 4u);
  EXPECT_EQ(page.blocks[0].kind, PageBlock::Kind::kHeading);
  EXPECT_EQ(page.blocks[1].kind, PageBlock::Kind::kParagraph);
  EXPECT_EQ(page.blocks[2].kind, PageBlock::Kind::kTable);
  EXPECT_EQ(page.blocks[3].kind, PageBlock::Kind::kParagraph);
  EXPECT_EQ(page.ParagraphCount(), 2u);
  EXPECT_EQ(page.TableCount(), 1u);
}

TEST(PageSegmenterTest, LeafDivBecomesParagraph) {
  Page page = SegmentPage("<div>Loose text block</div>");
  ASSERT_EQ(page.blocks.size(), 1u);
  EXPECT_EQ(page.blocks[0].kind, PageBlock::Kind::kParagraph);
  EXPECT_EQ(page.blocks[0].textual, "Loose text block");
}

TEST(PageSegmenterTest, NavAndFooterSkipped) {
  Page page = SegmentPage(
      "<nav><p>menu</p></nav><p>content</p><footer><p>legal</p></footer>");
  ASSERT_EQ(page.ParagraphCount(), 1u);
  EXPECT_EQ(page.blocks[0].textual, "content");
}

TEST(PageSegmenterTest, ListItemsAreParagraphs) {
  Page page = SegmentPage("<ul><li>alpha</li><li>beta</li></ul>");
  EXPECT_EQ(page.ParagraphCount(), 2u);
}

}  // namespace
}  // namespace briq::html
