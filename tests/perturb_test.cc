#include "corpus/perturb.h"

#include <gtest/gtest.h>

#include "corpus/generator.h"

namespace briq::corpus {
namespace {

struct SurfaceCase {
  const char* input;
  const char* truncated;
  const char* rounded;
};

class PerturbSurfaceTest : public ::testing::TestWithParam<SurfaceCase> {};

TEST_P(PerturbSurfaceTest, MatchesPaperExamples) {
  EXPECT_EQ(PerturbSurface(GetParam().input, PerturbMode::kTruncate),
            GetParam().truncated)
      << GetParam().input;
  EXPECT_EQ(PerturbSurface(GetParam().input, PerturbMode::kRound),
            GetParam().rounded)
      << GetParam().input;
}

// The paper's §VIII-A examples: 6746, 2.74, 0.19 become 6740/2.7/0.1
// (truncated) and 6750/2.7/0.2 (rounded).
INSTANTIATE_TEST_SUITE_P(
    PaperExamples, PerturbSurfaceTest,
    ::testing::Values(SurfaceCase{"6746", "6740", "6750"},
                      SurfaceCase{"2.74", "2.7", "2.7"},
                      SurfaceCase{"0.19", "0.1", "0.2"},
                      SurfaceCase{"$6,746", "$6,740", "$6,750"},
                      SurfaceCase{"about 123 units", "about 120 units",
                                  "about 120 units"},
                      SurfaceCase{"12.35%", "12.3%", "12.4%"}));

TEST(PerturbSurfaceTest, NoDigitsUnchanged) {
  EXPECT_EQ(PerturbSurface("no numbers", PerturbMode::kTruncate),
            "no numbers");
  EXPECT_EQ(PerturbSurface("", PerturbMode::kRound), "");
}

TEST(PerturbSurfaceTest, NoneModeIsIdentity) {
  EXPECT_EQ(PerturbSurface("6746", PerturbMode::kNone), "6746");
}

TEST(PerturbDocumentTest, SpansRemainConsistent) {
  CorpusOptions options;
  options.num_documents = 25;
  options.seed = 14;
  Corpus corpus = GenerateCorpus(options);
  for (PerturbMode mode : {PerturbMode::kTruncate, PerturbMode::kRound}) {
    for (const Document& original : corpus.documents) {
      Document perturbed = PerturbDocument(original, mode);
      ASSERT_EQ(perturbed.ground_truth.size(), original.ground_truth.size());
      for (const GroundTruthAlignment& gt : perturbed.ground_truth) {
        const std::string& para = perturbed.paragraphs[gt.paragraph];
        ASSERT_LE(gt.span.end, para.size());
        EXPECT_EQ(para.substr(gt.span.begin, gt.span.length()), gt.surface);
      }
    }
  }
}

TEST(PerturbDocumentTest, TargetsUnchanged) {
  CorpusOptions options;
  options.num_documents = 5;
  options.seed = 15;
  Corpus corpus = GenerateCorpus(options);
  Document perturbed =
      PerturbDocument(corpus.documents[0], PerturbMode::kTruncate);
  for (size_t i = 0; i < perturbed.ground_truth.size(); ++i) {
    EXPECT_EQ(perturbed.ground_truth[i].target.cells,
              corpus.documents[0].ground_truth[i].target.cells);
    EXPECT_EQ(perturbed.ground_truth[i].target.func,
              corpus.documents[0].ground_truth[i].target.func);
  }
  // Tables untouched.
  EXPECT_EQ(perturbed.tables[0].cell(1, 1).raw,
            corpus.documents[0].tables[0].cell(1, 1).raw);
}

TEST(PerturbCorpusTest, AppliesToAllDocuments) {
  CorpusOptions options;
  options.num_documents = 8;
  options.seed = 16;
  Corpus corpus = GenerateCorpus(options);
  Corpus perturbed = PerturbCorpus(corpus, PerturbMode::kRound);
  EXPECT_EQ(perturbed.size(), corpus.size());
}

TEST(PerturbModeNameTest, Names) {
  EXPECT_STREQ(PerturbModeName(PerturbMode::kNone), "original");
  EXPECT_STREQ(PerturbModeName(PerturbMode::kTruncate), "truncated");
  EXPECT_STREQ(PerturbModeName(PerturbMode::kRound), "rounded");
}

}  // namespace
}  // namespace briq::corpus
