# Fleet smoke test, run by ctest (see tests/CMakeLists.txt), four phases:
#
# 1. Parity: shard a corpus, stream it once in-process (`align --stream
#    --model`), then run `fleet align --workers 3 --model` over the same
#    shards and assert the fleet's final merged docs_total equals the
#    single-process document count — the merge must be exactly the sum of
#    the per-worker snapshots, no double counting, no gaps.
# 2. Live fleet observability: while a throttled fleet runs, scrape
#    /metrics (fleet-total plus `worker="N"`-labelled samples), /statusz
#    (the fleet table), and /healthz; end the linger via /quitquitquit.
#    The merged JSONL must be well-formed (`briq_tool logcheck`).
# 3. Failure policy `fail`: SIGKILL one worker mid-run, assert the driver
#    detects it, drains the others, and exits nonzero.
# 4. Failure policy `restart`: SIGKILL one worker mid-run, assert the
#    driver re-execs it over its range and the run still completes with
#    every document accounted for.
#
# Expects -DBRIQ_TOOL=<path to binary> and -DWORKDIR=<scratch dir>.

if(NOT BRIQ_TOOL OR NOT WORKDIR)
  message(FATAL_ERROR "fleet_smoke: BRIQ_TOOL and WORKDIR must be set")
endif()

find_program(BASH bash REQUIRED)

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

function(run_tool)
  execute_process(
    COMMAND "${BRIQ_TOOL}" ${ARGN}
    RESULT_VARIABLE rv
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR
      "briq_tool ${ARGN} exited with ${rv}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  set(run_tool_out "${out}" PARENT_SCOPE)
endfunction()

run_tool(generate 48 "${WORKDIR}/corpus.json" 11 --compact)
run_tool(shard "${WORKDIR}/corpus.json" "${WORKDIR}/shards" 6)
run_tool(train "${WORKDIR}/corpus.json" --model-out "${WORKDIR}/model.briq")

# ---------------------------------------------------------------------------
# Phase 1: merged fleet counters == single-process run.

run_tool(align "${WORKDIR}/shards" --stream --model "${WORKDIR}/model.briq"
         --threads 2)
if(NOT run_tool_out MATCHES "streamed ([0-9]+) documents")
  message(FATAL_ERROR "no 'streamed N documents' line:\n${run_tool_out}")
endif()
set(single_docs "${CMAKE_MATCH_1}")

run_tool(fleet align "${WORKDIR}/shards" --workers 3
         --model "${WORKDIR}/model.briq"
         --metrics-out "${WORKDIR}/fleet.jsonl" --metrics-interval 0.2)
if(NOT run_tool_out MATCHES "fleet align ok: ([0-9]+) documents")
  message(FATAL_ERROR "no fleet summary line:\n${run_tool_out}")
endif()
set(fleet_docs "${CMAKE_MATCH_1}")
if(NOT fleet_docs EQUAL single_docs)
  message(FATAL_ERROR
    "fleet merged ${fleet_docs} documents; single-process run streamed "
    "${single_docs}")
endif()

# The final merged record must agree with the summary, and the whole
# stream must be well-formed JSONL with the fleet record schema. Record
# keys dump alphabetically, so the record-level docs_total of the final
# record is the one glued to "flush_index"..."trigger":"final" (the
# per-worker docs_total fields are followed by "range" instead). Plain
# string ops, not file(STRINGS)+list: the range strings' unbalanced '['
# make CMake's list parsing swallow separators.
file(READ "${WORKDIR}/fleet.jsonl" fleet_jsonl)
if(NOT fleet_jsonl MATCHES
   "\"docs_total\":([0-9]+),\"flush_index\":[0-9]+,\"trigger\":\"final\"")
  message(FATAL_ERROR "no final fleet record:\n${fleet_jsonl}")
endif()
if(NOT CMAKE_MATCH_1 EQUAL single_docs)
  message(FATAL_ERROR
    "final fleet record carries docs_total ${CMAKE_MATCH_1}, expected "
    "${single_docs}:\n${fleet_jsonl}")
endif()
run_tool(logcheck "${WORKDIR}/fleet.jsonl"
         --require flush_index,trigger,docs_total,cumulative,workers)

# ---------------------------------------------------------------------------
# Phase 2: live /metrics + /statusz while a throttled fleet runs.

set(fleet_log "${WORKDIR}/fleet_live.log")
execute_process(
  COMMAND "${BASH}" -c
    "'${BRIQ_TOOL}' fleet align '${WORKDIR}/shards' --workers 3 \
       --model '${WORKDIR}/model.briq' --sleep-per-doc-ms 40 \
       --serve-port 0 --serve-linger 60 > '${fleet_log}' 2>&1 & echo $!"
  OUTPUT_VARIABLE fleet_pid
  OUTPUT_STRIP_TRAILING_WHITESPACE)

function(cleanup)
  execute_process(
    COMMAND "${BASH}" -c "kill ${fleet_pid} 2>/dev/null || true")
endfunction()

set(port "")
foreach(attempt RANGE 60)
  if(EXISTS "${fleet_log}")
    file(READ "${fleet_log}" log)
    if(log MATCHES "127\\.0\\.0\\.1:([0-9]+)/metrics")
      set(port "${CMAKE_MATCH_1}")
      break()
    endif()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.5)
endforeach()
if(port STREQUAL "")
  cleanup()
  file(READ "${fleet_log}" log)
  message(FATAL_ERROR "no fleet port announced within 30s; log:\n${log}")
endif()

# Scrape until the merged exposition shows worker-labelled stream counters
# (the workers need a moment to push their first snapshots).
set(scrape "${WORKDIR}/fleet_metrics.txt")
set(scraped FALSE)
foreach(attempt RANGE 40)
  file(DOWNLOAD "http://127.0.0.1:${port}/metrics" "${scrape}"
       STATUS status TIMEOUT 10)
  list(GET status 0 status_code)
  if(status_code EQUAL 0)
    file(READ "${scrape}" body)
    if(body MATCHES "briq_stream_documents_total{worker=\"")
      set(scraped TRUE)
      break()
    endif()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.5)
endforeach()
if(NOT scraped)
  cleanup()
  message(FATAL_ERROR
    "fleet /metrics never served worker-labelled stream counters")
endif()

file(READ "${scrape}" body)
foreach(needle
        "# TYPE briq_stream_documents_total counter"
        "briq_stream_documents_total{worker=\"0\"}"
        "briq_scrape_timestamp_seconds")
  string(FIND "${body}" "${needle}" at)
  if(at EQUAL -1)
    cleanup()
    message(FATAL_ERROR "fleet /metrics is missing '${needle}':\n${body}")
  endif()
endforeach()

file(DOWNLOAD "http://127.0.0.1:${port}/statusz" "${WORKDIR}/statusz.html"
     STATUS status TIMEOUT 10)
list(GET status 0 status_code)
if(NOT status_code EQUAL 0)
  cleanup()
  message(FATAL_ERROR "/statusz scrape failed: ${status}")
endif()
file(READ "${WORKDIR}/statusz.html" statusz)
foreach(needle "<h2>fleet (3 workers)</h2>" "running")
  string(FIND "${statusz}" "${needle}" at)
  if(at EQUAL -1)
    cleanup()
    message(FATAL_ERROR "/statusz is missing '${needle}':\n${statusz}")
  endif()
endforeach()

file(DOWNLOAD "http://127.0.0.1:${port}/healthz" "${WORKDIR}/healthz.txt"
     STATUS status TIMEOUT 10)
list(GET status 0 status_code)
if(NOT status_code EQUAL 0)
  cleanup()
  message(FATAL_ERROR "/healthz scrape failed: ${status}")
endif()

file(DOWNLOAD "http://127.0.0.1:${port}/quitquitquit" "${WORKDIR}/quit.txt"
     STATUS status TIMEOUT 10)
set(exited FALSE)
foreach(attempt RANGE 60)
  execute_process(
    COMMAND "${BASH}" -c "kill -0 ${fleet_pid} 2>/dev/null"
    RESULT_VARIABLE alive)
  if(NOT alive EQUAL 0)
    set(exited TRUE)
    break()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.5)
endforeach()
cleanup()
if(NOT exited)
  message(FATAL_ERROR "fleet kept running after /quitquitquit")
endif()

# ---------------------------------------------------------------------------
# Phase 3: kill a worker under --on-worker-failure fail -> nonzero exit.

set(fail_log "${WORKDIR}/fleet_fail.log")
execute_process(
  COMMAND "${BASH}" -c
    "set -e
     '${BRIQ_TOOL}' fleet align '${WORKDIR}/shards' --workers 3 \
       --model '${WORKDIR}/model.briq' --sleep-per-doc-ms 60 \
       --on-worker-failure fail > '${fail_log}' 2>&1 &
     fleet=$!
     # Wait for worker 1's pid line, then kill that worker outright.
     for i in $(seq 1 100); do
       pid=$(grep -oE 'fleet worker 1 pid [0-9]+' '${fail_log}' \
             | grep -oE '[0-9]+$' || true)
       [ -n \"$pid\" ] && break
       sleep 0.1
     done
     [ -n \"$pid\" ] || { kill $fleet 2>/dev/null; echo NOPID; exit 99; }
     sleep 0.5
     kill -KILL $pid
     if wait $fleet; then echo UNEXPECTED_OK; exit 98; else exit 0; fi"
  RESULT_VARIABLE rv
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  file(READ "${fail_log}" log)
  message(FATAL_ERROR
    "fail-policy phase broke (rv=${rv}):\n${out}\n${err}\nfleet log:\n${log}")
endif()
file(READ "${fail_log}" log)
foreach(needle "fleet worker 1 failed" "failing fast")
  string(FIND "${log}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "fail-policy log is missing '${needle}':\n${log}")
  endif()
endforeach()

# ---------------------------------------------------------------------------
# Phase 4: kill a worker under --on-worker-failure restart -> the fleet
# re-execs it and still merges every document.

set(restart_log "${WORKDIR}/fleet_restart.log")
execute_process(
  COMMAND "${BASH}" -c
    "set -e
     '${BRIQ_TOOL}' fleet align '${WORKDIR}/shards' --workers 3 \
       --model '${WORKDIR}/model.briq' --sleep-per-doc-ms 40 \
       --on-worker-failure restart --max-restarts 2 \
       > '${restart_log}' 2>&1 &
     fleet=$!
     for i in $(seq 1 100); do
       pid=$(grep -oE 'fleet worker 1 pid [0-9]+' '${restart_log}' \
             | head -1 | grep -oE '[0-9]+$' || true)
       [ -n \"$pid\" ] && break
       sleep 0.1
     done
     [ -n \"$pid\" ] || { kill $fleet 2>/dev/null; echo NOPID; exit 99; }
     sleep 0.5
     kill -KILL $pid
     wait $fleet"
  RESULT_VARIABLE rv
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  file(READ "${restart_log}" log)
  message(FATAL_ERROR
    "restart-policy fleet exited with ${rv}:\n${out}\n${err}\n"
    "fleet log:\n${log}")
endif()
file(READ "${restart_log}" log)
if(NOT log MATCHES "restarting over range")
  message(FATAL_ERROR "restart-policy log shows no restart:\n${log}")
endif()
if(NOT log MATCHES "fleet align ok: ${single_docs} documents")
  message(FATAL_ERROR
    "restarted fleet lost documents (expected ${single_docs}):\n${log}")
endif()

message(STATUS "fleet_smoke passed: parity, live scrape, fail + restart "
               "policies")
