#include "obs/snapshot_merge.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "obs/export.h"
#include "util/framing.h"
#include "util/json.h"

namespace briq::obs {
namespace {

MetricsSnapshot MakeSnapshot(uint64_t docs, int64_t depth,
                             std::vector<uint64_t> bucket_counts) {
  MetricsSnapshot s;
  s.counters["briq.stream.documents"] = docs;
  s.counters["briq.stream.decisions"] = docs * 3;
  s.gauges["briq.stream.queue_depth"] = depth;
  HistogramSnapshot h;
  h.bounds = {0.001, 0.01, 0.1};
  h.counts = std::move(bucket_counts);  // size must be bounds.size() + 1
  h.count = 0;
  for (uint64_t c : h.counts) h.count += c;
  h.sum = 0.05 * static_cast<double>(h.count);
  s.histograms["briq.stream.align_seconds"] = h;
  s.capture_unix_seconds = 1000.0 + static_cast<double>(docs);
  return s;
}

TEST(SnapshotMergeTest, SingleWorkerMergeIsIdentity) {
  SnapshotMerge merge;
  const MetricsSnapshot s = MakeSnapshot(10, 2, {1, 2, 3, 4});
  merge.Update(0, s);

  const MetricsSnapshot merged = merge.Merged();
  EXPECT_EQ(merged.counters, s.counters);
  EXPECT_EQ(merged.gauges, s.gauges);
  ASSERT_EQ(merged.histograms.size(), 1u);
  const HistogramSnapshot& h =
      merged.histograms.at("briq.stream.align_seconds");
  EXPECT_EQ(h.bounds, s.histograms.at("briq.stream.align_seconds").bounds);
  EXPECT_EQ(h.counts, s.histograms.at("briq.stream.align_seconds").counts);
  EXPECT_EQ(h.count, s.histograms.at("briq.stream.align_seconds").count);
  EXPECT_DOUBLE_EQ(merged.capture_unix_seconds, s.capture_unix_seconds);
}

TEST(SnapshotMergeTest, CountersAndGaugesSumAcrossWorkers) {
  SnapshotMerge merge;
  merge.Update(0, MakeSnapshot(10, 2, {1, 0, 0, 0}));
  merge.Update(1, MakeSnapshot(25, 3, {0, 2, 0, 0}));
  merge.Update(2, MakeSnapshot(5, 1, {0, 0, 4, 0}));

  const MetricsSnapshot merged = merge.Merged();
  EXPECT_EQ(merged.counters.at("briq.stream.documents"), 40u);
  EXPECT_EQ(merged.counters.at("briq.stream.decisions"), 120u);
  EXPECT_EQ(merged.gauges.at("briq.stream.queue_depth"), 6);
  // Newest worker capture wins.
  EXPECT_DOUBLE_EQ(merged.capture_unix_seconds, 1025.0);
  EXPECT_EQ(merge.num_workers(), 3u);
}

TEST(SnapshotMergeTest, UpdateReplacesAWorkersContribution) {
  // The push protocol sends cumulative snapshots: the latest one from a
  // worker supersedes everything it reported before — totals never double
  // count, and a restarted worker's fresh numbers replace the dead
  // incarnation's.
  SnapshotMerge merge;
  merge.Update(0, MakeSnapshot(10, 2, {1, 1, 1, 1}));
  merge.Update(0, MakeSnapshot(50, 4, {5, 5, 5, 5}));
  merge.Update(1, MakeSnapshot(7, 1, {1, 0, 0, 0}));

  const MetricsSnapshot merged = merge.Merged();
  EXPECT_EQ(merged.counters.at("briq.stream.documents"), 57u);
  EXPECT_EQ(
      merged.histograms.at("briq.stream.align_seconds").count, 21u);

  merge.Remove(1);
  EXPECT_EQ(merge.Merged().counters.at("briq.stream.documents"), 50u);
}

TEST(SnapshotMergeTest, MergeIsCommutativeAcrossArrivalOrder) {
  // Frames arrive over independent sockets — the collector gives no
  // ordering guarantee across workers, so any arrival order must merge to
  // the same aggregate.
  std::vector<std::pair<int, MetricsSnapshot>> updates = {
      {0, MakeSnapshot(10, 2, {1, 2, 3, 4})},
      {1, MakeSnapshot(20, 1, {4, 3, 2, 1})},
      {2, MakeSnapshot(30, 5, {0, 0, 0, 9})},
      {0, MakeSnapshot(15, 3, {2, 2, 2, 2})},  // replaces worker 0's first
  };

  SnapshotMerge in_order;
  for (const auto& [worker, snapshot] : updates) {
    in_order.Update(worker, snapshot);
  }
  const MetricsSnapshot expected = in_order.Merged();

  std::mt19937 rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    // Any shuffle that keeps each worker's own updates in order is a
    // legal arrival interleaving; shuffling everything additionally
    // exercises the replacement path, so the last update per worker must
    // dominate. Keep worker 0's replacement last to preserve
    // latest-wins semantics.
    std::vector<std::pair<int, MetricsSnapshot>> shuffled = {
        updates[1], updates[2]};
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    shuffled.insert(shuffled.begin(), updates[0]);
    shuffled.push_back(updates[3]);

    SnapshotMerge merge;
    for (const auto& [worker, snapshot] : shuffled) {
      merge.Update(worker, snapshot);
    }
    const MetricsSnapshot merged = merge.Merged();
    EXPECT_EQ(merged.counters, expected.counters);
    EXPECT_EQ(merged.gauges, expected.gauges);
    EXPECT_EQ(merged.histograms.at("briq.stream.align_seconds").counts,
              expected.histograms.at("briq.stream.align_seconds").counts);
  }
}

TEST(SnapshotMergeTest, HistogramBucketMergeFuzz) {
  // Bucket-wise merge must agree with summing each bucket independently,
  // for arbitrary worker counts and bucket contents.
  std::mt19937 rng(7);
  std::uniform_int_distribution<uint64_t> dist(0, 1000);
  for (int trial = 0; trial < 50; ++trial) {
    const int workers = 1 + static_cast<int>(rng() % 5);
    std::vector<uint64_t> expected_counts(4, 0);
    uint64_t expected_total = 0;
    double expected_sum = 0.0;

    SnapshotMerge merge;
    for (int w = 0; w < workers; ++w) {
      std::vector<uint64_t> counts(4);
      for (auto& c : counts) c = dist(rng);
      for (size_t i = 0; i < counts.size(); ++i) {
        expected_counts[i] += counts[i];
      }
      MetricsSnapshot s = MakeSnapshot(dist(rng), 0, counts);
      const HistogramSnapshot& h =
          s.histograms.at("briq.stream.align_seconds");
      expected_total += h.count;
      expected_sum += h.sum;
      merge.Update(w, s);
    }

    const HistogramSnapshot merged =
        merge.Merged().histograms.at("briq.stream.align_seconds");
    EXPECT_EQ(merged.counts, expected_counts) << "trial " << trial;
    EXPECT_EQ(merged.count, expected_total) << "trial " << trial;
    EXPECT_DOUBLE_EQ(merged.sum, expected_sum) << "trial " << trial;
  }
}

TEST(SnapshotMergeTest, MismatchedBucketLayoutFoldsIntoOverflow) {
  HistogramSnapshot a;
  a.bounds = {1.0, 2.0};
  a.counts = {10, 20, 30};
  a.count = 60;
  a.sum = 100.0;
  HistogramSnapshot b;
  b.bounds = {5.0};  // divergent layout (never happens between same-binary
  b.counts = {7, 8};  // workers; defensive path)
  b.count = 15;
  b.sum = 50.0;

  HistogramSnapshot into = a;
  MergeHistogram(&into, b);
  EXPECT_EQ(into.bounds, a.bounds);  // first-seen layout wins
  EXPECT_EQ(into.counts, (std::vector<uint64_t>{10, 20, 45}));
  EXPECT_EQ(into.count, 75u);  // totals still exact
  EXPECT_DOUBLE_EQ(into.sum, 150.0);
}

TEST(SnapshotMergeTest, JsonRoundTripIsLossless) {
  const MetricsSnapshot s = MakeSnapshot(123, 9, {1, 2, 3, 4});
  const util::Result<MetricsSnapshot> parsed =
      MetricsSnapshotFromJson(MetricsToJson(s));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->counters, s.counters);
  EXPECT_EQ(parsed->gauges, s.gauges);
  ASSERT_EQ(parsed->histograms.size(), 1u);
  const HistogramSnapshot& h =
      parsed->histograms.at("briq.stream.align_seconds");
  EXPECT_EQ(h.bounds, s.histograms.at("briq.stream.align_seconds").bounds);
  EXPECT_EQ(h.counts, s.histograms.at("briq.stream.align_seconds").counts);
  EXPECT_EQ(h.count, s.histograms.at("briq.stream.align_seconds").count);
}

TEST(SnapshotMergeTest, FromJsonRejectsMalformedShapes) {
  // Not an object.
  EXPECT_FALSE(MetricsSnapshotFromJson(util::Json(3.0)).ok());

  // counts.size() != bounds.size() + 1 — a torn or corrupted frame must
  // never produce a half-parsed snapshot.
  util::Json histogram = util::Json::Object();
  util::Json bounds = util::Json::Array();
  bounds.Append(util::Json(1.0));
  util::Json counts = util::Json::Array();
  counts.Append(util::Json(1.0));  // should be 2 entries
  histogram.Set("bounds", std::move(bounds));
  histogram.Set("counts", std::move(counts));
  histogram.Set("sum", util::Json(1.0));
  histogram.Set("count", util::Json(1.0));
  util::Json histograms = util::Json::Object();
  histograms.Set("h", std::move(histogram));
  util::Json root = util::Json::Object();
  root.Set("counters", util::Json::Object());
  root.Set("gauges", util::Json::Object());
  root.Set("histograms", std::move(histograms));
  EXPECT_FALSE(MetricsSnapshotFromJson(root).ok());

  // Non-numeric counter value.
  util::Json counters = util::Json::Object();
  counters.Set("c", util::Json("nope"));
  util::Json root2 = util::Json::Object();
  root2.Set("counters", std::move(counters));
  root2.Set("gauges", util::Json::Object());
  root2.Set("histograms", util::Json::Object());
  EXPECT_FALSE(MetricsSnapshotFromJson(root2).ok());
}

TEST(SnapshotMergeTest, TruncatedFrameStaysPendingAndNeverYields) {
  // A worker killed mid-send leaves a torn frame at the end of the
  // stream. The reader must hold it as pending bytes — never surface a
  // partial payload, never corrupt later frames.
  const std::string payload = "{\"type\":\"heartbeat\",\"worker\":0}";
  const std::string frame = util::EncodeFrame(payload);

  util::FrameReader reader;
  reader.Append(frame.data(), frame.size() - 5);  // torn mid-payload
  util::Result<std::optional<std::string>> next = reader.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
  EXPECT_GT(reader.pending_bytes(), 0u);
  EXPECT_FALSE(reader.poisoned());

  // The missing tail arrives (a slow writer, not a dead one): the frame
  // completes exactly.
  reader.Append(frame.data() + frame.size() - 5, 5);
  next = reader.Next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next->has_value());
  EXPECT_EQ(**next, payload);
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(SnapshotMergeTest, OversizedLengthPrefixPoisonsOnlyThatReader) {
  // A desynchronized stream shows up as an absurd length prefix. The
  // reader poisons itself (that stream is unreadable from here on), which
  // the collector answers by dropping the one connection — a second
  // reader, i.e. another worker's stream, is untouched.
  util::FrameReader bad;
  const char huge[4] = {0x7f, 0x7f, 0x7f, 0x7f};
  bad.Append(huge, sizeof(huge));
  util::Result<std::optional<std::string>> next = bad.Next();
  EXPECT_FALSE(next.ok());
  EXPECT_TRUE(bad.poisoned());
  // Sticky: every later call re-reports the error.
  EXPECT_FALSE(bad.Next().ok());

  util::FrameReader good;
  const std::string frame = util::EncodeFrame("{\"worker\":1}");
  good.Append(frame.data(), frame.size());
  util::Result<std::optional<std::string>> ok = good.Next();
  ASSERT_TRUE(ok.ok());
  ASSERT_TRUE(ok->has_value());
  EXPECT_EQ(**ok, "{\"worker\":1}");
}

TEST(SnapshotMergeTest, InterleavedFramesSplitAtArbitraryBoundaries) {
  // TCP gives no message boundaries: two frames may arrive in any chunking.
  const std::string f1 = util::EncodeFrame("{\"a\":1}");
  const std::string f2 = util::EncodeFrame("{\"b\":2}");
  const std::string stream = f1 + f2;
  for (size_t split = 0; split <= stream.size(); ++split) {
    util::FrameReader reader;
    reader.Append(stream.data(), split);
    std::vector<std::string> payloads;
    while (true) {
      util::Result<std::optional<std::string>> next = reader.Next();
      ASSERT_TRUE(next.ok());
      if (!next->has_value()) break;
      payloads.push_back(**next);
    }
    reader.Append(stream.data() + split, stream.size() - split);
    while (true) {
      util::Result<std::optional<std::string>> next = reader.Next();
      ASSERT_TRUE(next.ok());
      if (!next->has_value()) break;
      payloads.push_back(**next);
    }
    ASSERT_EQ(payloads.size(), 2u) << "split at " << split;
    EXPECT_EQ(payloads[0], "{\"a\":1}");
    EXPECT_EQ(payloads[1], "{\"b\":2}");
  }
}

}  // namespace
}  // namespace briq::obs
