#include "util/json.h"

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "corpus/paper_examples.h"
#include "corpus/serialization.h"

namespace briq::util {
namespace {

TEST(JsonTest, ScalarsDump) {
  EXPECT_EQ(Json().Dump(), "null");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(42).Dump(), "42");
  EXPECT_EQ(Json(3.5).Dump(), "3.5");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\nd").Dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(JsonTest, ArraysAndObjects) {
  Json arr = Json::Array();
  arr.Append(1);
  arr.Append("two");
  EXPECT_EQ(arr.Dump(), "[1,\"two\"]");

  Json obj = Json::Object();
  obj.Set("b", 2);
  obj.Set("a", 1);
  // Keys are sorted (std::map).
  EXPECT_EQ(obj.Dump(), "{\"a\":1,\"b\":2}");
  EXPECT_TRUE(obj.Has("a"));
  EXPECT_FALSE(obj.Has("z"));
  EXPECT_EQ(obj.Get("z", Json(9)).AsInt(), 9);
}

TEST(JsonTest, ParseScalars) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_EQ(Json::Parse("true")->AsBool(), true);
  EXPECT_DOUBLE_EQ(Json::Parse("-3.25e2")->AsDouble(), -325);
  EXPECT_EQ(Json::Parse("\"x\\ny\"")->AsString(), "x\ny");
}

TEST(JsonTest, ParseNested) {
  auto r = Json::Parse(R"({"a": [1, 2, {"b": "c"}], "d": null})");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->at("a").size(), 3u);
  EXPECT_EQ(r->at("a").at(2).at("b").AsString(), "c");
  EXPECT_TRUE(r->at("d").is_null());
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("12abc").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("{} trailing").ok());
}

TEST(JsonTest, RoundTrip) {
  const char* txt =
      R"({"arr":[1,2.5,"x"],"nested":{"t":true,"n":null},"s":"q\"uote"})";
  auto parsed = Json::Parse(txt);
  ASSERT_TRUE(parsed.ok());
  auto reparsed = Json::Parse(parsed->Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(*parsed == *reparsed);
}

TEST(JsonTest, PrettyPrintParses) {
  Json obj = Json::Object();
  Json arr = Json::Array();
  arr.Append(1);
  arr.Append(2);
  obj.Set("list", std::move(arr));
  std::string pretty = obj.Dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto r = Json::Parse(pretty);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r == obj);
}

TEST(JsonTest, UnicodeEscapeDecodes) {
  auto r = Json::Parse("\"\\u20AC\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsString(), "\xE2\x82\xAC");
}

// ---------------------------------------------------------------------------
// Corpus serialization round trips.
// ---------------------------------------------------------------------------

TEST(SerializationTest, DocumentRoundTrip) {
  corpus::Document doc = corpus::Figure1cFinance();
  Json json = corpus::DocumentToJson(doc);
  auto restored = corpus::DocumentFromJson(json);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->id, doc.id);
  EXPECT_EQ(restored->paragraphs, doc.paragraphs);
  ASSERT_EQ(restored->tables.size(), doc.tables.size());
  EXPECT_EQ(restored->tables[0].caption(), doc.tables[0].caption());
  EXPECT_EQ(restored->tables[0].cell(1, 1).raw, doc.tables[0].cell(1, 1).raw);
  // Annotation is recomputed: values survive (incl. caption scaling).
  EXPECT_DOUBLE_EQ(restored->tables[0].cell(1, 1).quantity->value, 3.263e9);
  ASSERT_EQ(restored->ground_truth.size(), doc.ground_truth.size());
  for (size_t i = 0; i < doc.ground_truth.size(); ++i) {
    EXPECT_EQ(restored->ground_truth[i].surface, doc.ground_truth[i].surface);
    EXPECT_EQ(restored->ground_truth[i].target.cells,
              doc.ground_truth[i].target.cells);
    EXPECT_EQ(restored->ground_truth[i].target.func,
              doc.ground_truth[i].target.func);
  }
}

TEST(SerializationTest, CorpusFileRoundTrip) {
  corpus::CorpusOptions options;
  options.num_documents = 6;
  options.seed = 33;
  corpus::Corpus corpus = corpus::GenerateCorpus(options);

  std::string path = ::testing::TempDir() + "/briq_corpus_test.json";
  ASSERT_TRUE(corpus::SaveCorpus(corpus, path).ok());
  auto loaded = corpus::LoadCorpus(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(loaded->documents[i].paragraphs,
              corpus.documents[i].paragraphs);
    EXPECT_EQ(loaded->documents[i].ground_truth.size(),
              corpus.documents[i].ground_truth.size());
  }
}

TEST(SerializationTest, LoadRejectsGarbage) {
  EXPECT_FALSE(corpus::LoadCorpus("/nonexistent/path.json").ok());
  auto r = corpus::CorpusFromJson(*Json::Parse("{\"format\":\"other\"}"));
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace briq::util
