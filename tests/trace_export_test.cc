#include "obs/trace_export.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/json.h"

namespace briq::obs {
namespace {

namespace fs = std::filesystem;

/// Per-process unique temp path (gtest_discover_tests runs each TEST as
/// its own process; a fixed name would race under `ctest -j`).
std::string TempPath(const std::string& stem) {
  return (fs::path(::testing::TempDir()) /
          (stem + "-" + std::to_string(::getpid()) + ".json"))
      .string();
}

SpanNode MakeRoot(const std::string& name, double duration_seconds) {
  SpanNode root;
  root.name = name;
  root.duration_seconds = duration_seconds;
  SpanNode child;
  child.name = name + "/child";
  child.start_seconds = duration_seconds / 4.0;
  child.duration_seconds = duration_seconds / 2.0;
  root.children.push_back(child);
  return root;
}

util::Json ParseFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  util::Result<util::Json> parsed = util::Json::Parse(buffer.str());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.ok() ? std::move(parsed).value() : util::Json();
}

// ChromeTraceJson is a pure converter and must satisfy the Chrome
// trace-event schema in both builds: every event a complete ("X") event
// with name/cat/ph/pid/tid/ts/dur, timestamps in microseconds.
TEST(ChromeTraceJsonTest, EmitsValidCompleteEvents) {
  SpanNode root = MakeRoot("document", 0.010);
  SpanNode aggregated;
  aggregated.name = "classify";
  aggregated.start_seconds = -1.0;  // synthetic aggregated leaf
  aggregated.duration_seconds = 0.002;
  root.children.push_back(aggregated);

  const util::Json trace = ChromeTraceJson({root});
  EXPECT_EQ(trace.at("displayTimeUnit").AsString(), "ms");
  const util::Json& events = trace.at("traceEvents");
  ASSERT_EQ(events.size(), 3u);  // root + timed child + aggregated leaf
  bool saw_aggregated = false;
  for (size_t i = 0; i < events.size(); ++i) {
    const util::Json& e = events.at(i);
    EXPECT_EQ(e.at("ph").AsString(), "X");
    EXPECT_EQ(e.at("cat").AsString(), "briq");
    EXPECT_EQ(e.at("pid").AsInt(), 1);
    EXPECT_EQ(e.at("tid").AsInt(), 1);
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
    EXPECT_GE(e.at("ts").AsDouble(), 0.0);
    if (e.Has("args") && e.at("args").Has("aggregated")) {
      saw_aggregated = true;
      // Aggregated leaves render at their parent's start.
      EXPECT_DOUBLE_EQ(e.at("ts").AsDouble(), 0.0);
    }
  }
  EXPECT_TRUE(saw_aggregated);
  // The timed child sits at its offset within the root, in microseconds.
  EXPECT_DOUBLE_EQ(events.at(1).at("ts").AsDouble(), 2500.0);
  EXPECT_DOUBLE_EQ(events.at(1).at("dur").AsDouble(), 5000.0);
}

TEST(ChromeTraceJsonTest, SequentialLayoutWithoutBaseTimestamps) {
  const util::Json trace =
      ChromeTraceJson({MakeRoot("a", 0.001), MakeRoot("b", 0.002)});
  const util::Json& events = trace.at("traceEvents");
  ASSERT_EQ(events.size(), 4u);
  // Root "b" starts where "a" ended, on its own track.
  EXPECT_DOUBLE_EQ(events.at(0).at("ts").AsDouble(), 0.0);
  EXPECT_EQ(events.at(0).at("tid").AsInt(), 1);
  EXPECT_DOUBLE_EQ(events.at(2).at("ts").AsDouble(), 1000.0);
  EXPECT_EQ(events.at(2).at("tid").AsInt(), 2);
}

TEST(ChromeTraceJsonTest, ExplicitBaseTimestampsPlaceRoots) {
  const util::Json trace =
      ChromeTraceJson({MakeRoot("a", 0.001), MakeRoot("b", 0.001)},
                      {0.5, 0.25});
  const util::Json& events = trace.at("traceEvents");
  EXPECT_DOUBLE_EQ(events.at(0).at("ts").AsDouble(), 500000.0);
  EXPECT_DOUBLE_EQ(events.at(2).at("ts").AsDouble(), 250000.0);
}

// TraceRing::Record works in both builds (only ScopedSpan is stubbed), so
// the exporter end-to-end path is testable everywhere.
TEST(TraceExporterTest, SinkReceivesEveryRootAndFlushWritesTheFile) {
  const std::string path = TempPath("trace_export_e2e");
  TraceRing ring(8);
  TraceExportOptions options;
  options.path = path;
  options.sample_fraction = 1.0;  // keep everything
  {
    TraceExporter exporter(options);
    exporter.Attach(&ring);
    for (int i = 0; i < 5; ++i) {
      ring.Record(MakeRoot("doc" + std::to_string(i), 0.001 * (i + 1)));
    }
    EXPECT_EQ(exporter.retained_roots(), 5u);
    EXPECT_EQ(exporter.dropped_roots(), 0u);
    ASSERT_TRUE(exporter.Flush().ok());
    exporter.Detach();
  }
  const util::Json trace = ParseFile(path);
  ASSERT_TRUE(trace.Has("traceEvents"));
  EXPECT_EQ(trace.at("traceEvents").size(), 10u);  // 5 roots x 2 nodes
  // Detached: later records must not reach the destroyed exporter.
  ring.Record(MakeRoot("late", 0.001));
  fs::remove(path);
}

TEST(TraceExporterTest, SlowestPerWindowSurviveWithoutSampling) {
  const std::string path = TempPath("trace_export_slowest");
  TraceRing ring(8);
  TraceExportOptions options;
  options.path = path;
  options.sample_fraction = 0.0;  // tail-latency reservoir only
  options.slowest_per_window = 2;
  TraceExporter exporter(options);
  exporter.Attach(&ring);
  for (int i = 0; i < 5; ++i) {
    // Durations 1ms..5ms in arrival order; only the slowest two survive.
    ring.Record(MakeRoot("doc" + std::to_string(i), 0.001 * (i + 1)));
  }
  exporter.Detach();
  EXPECT_EQ(exporter.retained_roots(), 2u);
  EXPECT_EQ(exporter.dropped_roots(), 3u);
  ASSERT_TRUE(exporter.Flush().ok());

  std::set<std::string> names;
  const util::Json trace = ParseFile(path);
  for (const util::Json& e : trace.at("traceEvents").items()) {
    names.insert(e.at("name").AsString());
  }
  EXPECT_TRUE(names.count("doc3") == 1 && names.count("doc4") == 1)
      << "slowest-k reservoir must keep the two slowest documents";
  EXPECT_EQ(names.count("doc0"), 0u);
  fs::remove(path);
}

TEST(TraceExporterTest, MaxRootsBoundsRetentionAndCountsDrops) {
  TraceRing ring(8);
  TraceExportOptions options;
  options.sample_fraction = 1.0;
  options.max_roots = 2;
  TraceExporter exporter(options);
  exporter.Attach(&ring);
  for (int i = 0; i < 10; ++i) {
    ring.Record(MakeRoot("doc", 0.001));
  }
  exporter.Detach();
  EXPECT_LE(exporter.retained_roots(), 2u);
  EXPECT_GE(exporter.dropped_roots(), 8u);
  EXPECT_TRUE(exporter.Flush().ok());  // path empty: flush is metadata-only
}

TEST(TraceExporterTest, RepeatedFlushRewritesAtomically) {
  const std::string path = TempPath("trace_export_rewrite");
  TraceRing ring(8);
  TraceExportOptions options;
  options.path = path;
  options.sample_fraction = 1.0;
  TraceExporter exporter(options);
  exporter.Attach(&ring);
  ring.Record(MakeRoot("first", 0.001));
  ASSERT_TRUE(exporter.Flush().ok());
  EXPECT_EQ(ParseFile(path).at("traceEvents").size(), 2u);
  ring.Record(MakeRoot("second", 0.001));
  ASSERT_TRUE(exporter.Flush().ok());
  EXPECT_EQ(ParseFile(path).at("traceEvents").size(), 4u);
  // No torn intermediate file left behind.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  exporter.Detach();
  fs::remove(path);
}

TEST(TraceExporterTest, FlushFailsOnUnwritablePath) {
  TraceRing ring(4);
  TraceExportOptions options;
  options.path = (fs::path(::testing::TempDir()) / "no_such_dir" /
                  std::to_string(::getpid()) / "trace.json")
                     .string();
  options.sample_fraction = 1.0;
  TraceExporter exporter(options);
  exporter.Attach(&ring);
  ring.Record(MakeRoot("doc", 0.001));
  EXPECT_FALSE(exporter.Flush().ok());
  exporter.Detach();
}

}  // namespace
}  // namespace briq::obs
