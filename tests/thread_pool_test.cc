// Tests of util::ThreadPool: task completion, result/exception
// propagation through futures, and ParallelFor coverage across grain and
// range edge cases.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace briq::util {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> done;
  for (int i = 0; i < 100; ++i) {
    done.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : done) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitReturnsTaskResult) {
  ThreadPool pool(2);
  std::future<int> f = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(2);
  std::future<int> f = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, NonPositiveThreadCountFallsBackToHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
  std::future<int> f = pool.Submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }  // ~ThreadPool joins after the queue is drained
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (size_t grain : {1u, 3u, 7u, 100u, 1000u}) {
    std::vector<std::atomic<int>> hits(257);
    pool.ParallelFor(0, hits.size(), grain, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) ++hits[i];
    });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " grain " << grain;
    }
  }
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(5, 5, 1, [&](size_t, size_t) { called = true; });
  pool.ParallelFor(7, 3, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, GrainZeroIsClampedToOne) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(0, 10, 0, [&](size_t lo, size_t hi) {
    count += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ParallelForTest, GrainLargerThanRangeRunsInline) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id executed;
  pool.ParallelFor(0, 8, 100, [&](size_t lo, size_t hi) {
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 8u);
    executed = std::this_thread::get_id();
  });
  EXPECT_EQ(executed, caller);
}

TEST(ParallelForTest, NonzeroBeginIsRespected) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.ParallelFor(10, 20, 2, [&](size_t lo, size_t hi) {
    long acc = 0;
    for (size_t i = lo; i < hi; ++i) acc += static_cast<long>(i);
    sum += acc;
  });
  EXPECT_EQ(sum.load(), 10 + 11 + 12 + 13 + 14 + 15 + 16 + 17 + 18 + 19);
}

TEST(ParallelForTest, PropagatesChunkException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [](size_t lo, size_t) {
                         if (lo == 42) throw std::runtime_error("chunk 42");
                       }),
      std::runtime_error);
}

TEST(ParallelForTest, FreeFunctionSingleThreadRunsOnCaller) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen;
  ParallelFor(1, 0, 10, 2, [&](size_t, size_t) {
    seen.push_back(std::this_thread::get_id());  // safe: inline execution
  });
  ASSERT_FALSE(seen.empty());
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ParallelForTest, FreeFunctionMultiThreadCoversRange) {
  std::vector<std::atomic<int>> hits(100);
  ParallelFor(8, 0, hits.size(), 5, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

}  // namespace
}  // namespace briq::util
