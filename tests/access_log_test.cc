// Access-log coverage: the JSONL schema (every line parses via util/json
// and carries every field), crash-safe per-line flushing, size-based
// rotation preserving every line across generations, sticky error status,
// and concurrent writers. Runs in the no_metrics sub-build too, where the
// stub must stay inert.

#include "obs/access_log.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "util/json.h"

namespace briq::obs {
namespace {

// Tests run as separate processes under ctest: pid-unique paths keep
// parallel suites from colliding in the shared tmp dir.
std::string TempPath(const std::string& tag) {
  return std::filesystem::temp_directory_path() /
         ("briq_access_log_" + tag + "_" + std::to_string(::getpid()) +
          ".jsonl");
}

void RemoveWithRotations(const std::string& path, size_t generations = 8) {
  std::filesystem::remove(path);
  for (size_t g = 1; g <= generations; ++g) {
    std::filesystem::remove(path + "." + std::to_string(g));
  }
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

AccessLogRecord MakeRecord(int i) {
  AccessLogRecord record;
  record.trace_id = "trace-" + std::to_string(i);
  record.method = "POST";
  record.path = "/align";
  record.status = 200;
  record.bytes_in = 128;
  record.bytes_out = 512;
  record.wall_seconds = 0.012;
  record.queue_wait_seconds = 0.001;
  record.unix_seconds = 1700000000.0 + i;
  record.stage_seconds = {{"parse", 0.004}, {"extract", 0.006}};
  return record;
}

TEST(AccessLogRecordJsonTest, CarriesEveryFieldOfTheSchema) {
  const util::Json json = AccessLogRecordJson(MakeRecord(7));
  ASSERT_TRUE(json.is_object());
  for (const char* key :
       {"trace_id", "method", "path", "status", "bytes_in", "bytes_out",
        "wall_seconds", "queue_wait_seconds", "unix_seconds", "stages"}) {
    EXPECT_TRUE(json.Has(key)) << "missing key " << key;
  }
  EXPECT_EQ(json.at("trace_id").AsString(), "trace-7");
  EXPECT_DOUBLE_EQ(json.at("status").AsDouble(), 200.0);
  ASSERT_TRUE(json.at("stages").is_object());
  EXPECT_DOUBLE_EQ(json.at("stages").at("parse").AsDouble(), 0.004);
  EXPECT_DOUBLE_EQ(json.at("stages").at("extract").AsDouble(), 0.006);
  // The line must round-trip through the parser (the logcheck contract).
  util::Result<util::Json> parsed = util::Json::Parse(json.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->at("trace_id").AsString(), "trace-7");
}

#ifndef BRIQ_NO_METRICS

TEST(AccessLogTest, EveryLineParsesWithTheFullSchema) {
  const std::string path = TempPath("schema");
  RemoveWithRotations(path);

  AccessLogOptions options;
  options.path = path;
  AccessLog log(options);
  ASSERT_TRUE(log.Open().ok());
  for (int i = 0; i < 5; ++i) log.Write(MakeRecord(i));
  log.Close();
  EXPECT_EQ(log.lines_written(), 5u);
  EXPECT_TRUE(log.status().ok());

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 5u);
  for (size_t i = 0; i < lines.size(); ++i) {
    util::Result<util::Json> parsed = util::Json::Parse(lines[i]);
    ASSERT_TRUE(parsed.ok()) << "line " << i << ": "
                             << parsed.status().ToString();
    ASSERT_TRUE(parsed->is_object());
    EXPECT_EQ(parsed->at("trace_id").AsString(),
              "trace-" + std::to_string(i));
    EXPECT_TRUE(parsed->Has("wall_seconds"));
    EXPECT_TRUE(parsed->Has("stages"));
  }
  RemoveWithRotations(path);
}

TEST(AccessLogTest, ReopeningAppendsInsteadOfTruncating) {
  const std::string path = TempPath("append");
  RemoveWithRotations(path);

  AccessLogOptions options;
  options.path = path;
  {
    AccessLog log(options);
    ASSERT_TRUE(log.Open().ok());
    log.Write(MakeRecord(0));
  }  // destructor closes
  {
    AccessLog log(options);
    ASSERT_TRUE(log.Open().ok());
    log.Write(MakeRecord(1));
    log.Close();
  }
  EXPECT_EQ(ReadLines(path).size(), 2u);
  RemoveWithRotations(path);
}

TEST(AccessLogTest, RotationPreservesEveryLineAcrossGenerations) {
  const std::string path = TempPath("rotate");
  RemoveWithRotations(path);

  AccessLogOptions options;
  options.path = path;
  options.max_bytes = 512;  // a couple of lines per generation
  // High enough that no generation ages past the cap: every line written
  // must then be findable in exactly one file.
  options.max_rotated_files = 64;
  AccessLog log(options);
  ASSERT_TRUE(log.Open().ok());
  constexpr int kLines = 40;
  for (int i = 0; i < kLines; ++i) log.Write(MakeRecord(i));
  log.Close();
  ASSERT_TRUE(log.status().ok());
  EXPECT_EQ(log.lines_written(), static_cast<size_t>(kLines));
  EXPECT_GE(log.rotations(), 2u);

  // Union of active file + rotations holds every line exactly once.
  std::vector<bool> seen(kLines, false);
  std::vector<std::string> files = {path};
  for (size_t g = 1; g <= options.max_rotated_files; ++g) {
    files.push_back(path + "." + std::to_string(g));
  }
  size_t total = 0;
  for (const std::string& file : files) {
    if (!std::filesystem::exists(file)) continue;
    for (const std::string& line : ReadLines(file)) {
      util::Result<util::Json> parsed = util::Json::Parse(line);
      ASSERT_TRUE(parsed.ok()) << file << ": " << parsed.status().ToString();
      const std::string trace_id = parsed->at("trace_id").AsString();
      const int i = std::stoi(trace_id.substr(trace_id.rfind('-') + 1));
      ASSERT_GE(i, 0);
      ASSERT_LT(i, kLines);
      EXPECT_FALSE(seen[i]) << "duplicated line " << i;
      seen[i] = true;
      ++total;
    }
  }
  EXPECT_EQ(total, static_cast<size_t>(kLines));
  for (int i = 0; i < kLines; ++i) EXPECT_TRUE(seen[i]) << "lost line " << i;
  RemoveWithRotations(path);
}

TEST(AccessLogTest, OldestGenerationIsDroppedPastTheCap) {
  const std::string path = TempPath("cap");
  RemoveWithRotations(path);

  AccessLogOptions options;
  options.path = path;
  options.max_bytes = 256;
  options.max_rotated_files = 2;
  AccessLog log(options);
  ASSERT_TRUE(log.Open().ok());
  for (int i = 0; i < 60; ++i) log.Write(MakeRecord(i));
  log.Close();
  EXPECT_GT(log.rotations(), 2u);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".1"));
  EXPECT_TRUE(std::filesystem::exists(path + ".2"));
  EXPECT_FALSE(std::filesystem::exists(path + ".3"));
  RemoveWithRotations(path);
}

TEST(AccessLogTest, UnwritablePathFailsOpenWithAStatus) {
  AccessLogOptions options;
  options.path = "/nonexistent-dir-briq/access.jsonl";
  AccessLog log(options);
  EXPECT_FALSE(log.Open().ok());
}

TEST(AccessLogTest, ConcurrentWritersNeverTearALine) {
  const std::string path = TempPath("mt");
  RemoveWithRotations(path);

  AccessLogOptions options;
  options.path = path;
  options.max_bytes = 2048;  // rotations under contention too
  options.max_rotated_files = 32;
  AccessLog log(options);
  ASSERT_TRUE(log.Open().ok());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Write(MakeRecord(t * kPerThread + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  log.Close();
  ASSERT_TRUE(log.status().ok());
  EXPECT_EQ(log.lines_written(),
            static_cast<size_t>(kThreads) * kPerThread);

  size_t parsed_lines = 0;
  std::vector<std::string> files = {path};
  for (size_t g = 1; g <= options.max_rotated_files; ++g) {
    files.push_back(path + "." + std::to_string(g));
  }
  for (const std::string& file : files) {
    if (!std::filesystem::exists(file)) continue;
    for (const std::string& line : ReadLines(file)) {
      util::Result<util::Json> parsed = util::Json::Parse(line);
      ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
      ++parsed_lines;
    }
  }
  EXPECT_EQ(parsed_lines, static_cast<size_t>(kThreads) * kPerThread);
  RemoveWithRotations(path, options.max_rotated_files);
}

#else  // BRIQ_NO_METRICS

TEST(AccessLogStubTest, OpensAndWritesWithoutTouchingTheFilesystem) {
  const std::string path = TempPath("stub");
  AccessLogOptions options;
  options.path = path;
  AccessLog log(options);
  EXPECT_TRUE(log.Open().ok());
  log.Write(MakeRecord(0));
  log.Close();
  EXPECT_EQ(log.lines_written(), 0u);
  EXPECT_FALSE(std::filesystem::exists(path));
}

#endif  // BRIQ_NO_METRICS

}  // namespace
}  // namespace briq::obs
