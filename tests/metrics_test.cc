#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "util/bounded_queue.h"

namespace briq::obs {
namespace {

#ifndef BRIQ_NO_METRICS

TEST(BucketsTest, ExponentialBuckets) {
  const std::vector<double> b = ExponentialBuckets(1e-5, 4.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1e-5);
  EXPECT_DOUBLE_EQ(b[1], 4e-5);
  EXPECT_DOUBLE_EQ(b[2], 1.6e-4);
  EXPECT_DOUBLE_EQ(b[3], 6.4e-4);
}

TEST(BucketsTest, LinearBuckets) {
  const std::vector<double> b = LinearBuckets(1.0, 2.0, 3);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 3.0);
  EXPECT_DOUBLE_EQ(b[2], 5.0);
}

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ShardedAggregationIsExactAcrossThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddMax) {
  Gauge g;
  g.Set(5);
  EXPECT_EQ(g.Value(), 5);
  g.Add(-2);
  EXPECT_EQ(g.Value(), 3);
  g.SetMax(10);
  EXPECT_EQ(g.Value(), 10);
  g.SetMax(7);  // lower than current: no change
  EXPECT_EQ(g.Value(), 10);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(GaugeTest, SetMaxUnderContention) {
  Gauge g;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&g, t] {
      for (int i = 0; i < 5000; ++i) g.SetMax(t * 5000 + i);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.Value(), 3 * 5000 + 4999);
}

TEST(HistogramTest, BucketAssignment) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);  // bucket 0 (<= 1.0)
  h.Observe(1.0);  // bucket 0 (bounds are inclusive upper edges)
  h.Observe(1.5);  // bucket 1
  h.Observe(4.0);  // bucket 2
  h.Observe(9.0);  // overflow
  const HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
  EXPECT_DOUBLE_EQ(s.Mean(), s.sum / 5.0);
}

TEST(HistogramTest, ShardedAggregationAcrossThreads) {
  Histogram h(LinearBuckets(1.0, 1.0, 4));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(2.5);
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.counts[2], s.count);  // all land in (2.0, 3.0]
  EXPECT_DOUBLE_EQ(s.sum, 2.5 * kThreads * kPerThread);
}

TEST(RegistryTest, LookupIsStableAndTyped) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("briq.test.events");
  EXPECT_EQ(c, registry.GetCounter("briq.test.events"));
  Gauge* g = registry.GetGauge("briq.test.depth");
  EXPECT_EQ(g, registry.GetGauge("briq.test.depth"));
  Histogram* h = registry.GetHistogram("briq.test.latency_seconds",
                                       DefaultLatencyBuckets());
  // Second lookup with different bounds returns the same instrument.
  EXPECT_EQ(h, registry.GetHistogram("briq.test.latency_seconds", {1.0}));
  EXPECT_EQ(h->bounds().size(), DefaultLatencyBuckets().size());
}

TEST(RegistryTest, SnapshotAndReset) {
  MetricRegistry registry;
  registry.GetCounter("briq.test.a")->Add(3);
  registry.GetGauge("briq.test.b")->Set(-7);
  registry.GetHistogram("briq.test.c_seconds", {1.0})->Observe(0.5);
  MetricsSnapshot s = registry.Snapshot();
  EXPECT_EQ(s.counters.at("briq.test.a"), 3u);
  EXPECT_EQ(s.gauges.at("briq.test.b"), -7);
  EXPECT_EQ(s.histograms.at("briq.test.c_seconds").count, 1u);

  registry.Reset();
  s = registry.Snapshot();
  // Names stay registered, values zero.
  EXPECT_EQ(s.counters.at("briq.test.a"), 0u);
  EXPECT_EQ(s.gauges.at("briq.test.b"), 0);
  EXPECT_EQ(s.histograms.at("briq.test.c_seconds").count, 0u);
}

TEST(ScopedTimerTest, ObservesElapsedSeconds) {
  Histogram h(DefaultLatencyBuckets());
  { ScopedTimer timer(&h); }
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_GE(s.sum, 0.0);
  EXPECT_LT(s.sum, 1.0);  // an empty scope does not take a second
}

TEST(QueueTelemetryTest, BridgesQueueEventsToInstruments) {
  MetricRegistry& registry = MetricRegistry::Global();
  registry.Reset();
  QueueTelemetry telemetry("briq.test_queue");
  ASSERT_NE(telemetry.observer(), nullptr);
  util::BoundedQueue<int> queue(1, telemetry.observer());
  queue.Push(1);  // fills the capacity-1 queue
  std::atomic<bool> producer_entered{false};
  std::thread consumer([&] {
    // Hold off popping until the producer is committed to its Push, so the
    // queue is provably full when Push(2) runs and the blocked path fires.
    while (!producer_entered.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    while (queue.Pop()) {
    }
  });
  producer_entered.store(true);
  queue.Push(2);
  queue.Close();
  consumer.join();

  MetricsSnapshot s = registry.Snapshot();
  EXPECT_EQ(s.gauges.at("briq.test_queue.queue_depth"), 0);
  EXPECT_GE(s.gauges.at("briq.test_queue.queue_depth_peak"), 1);
  EXPECT_GE(s.histograms.at("briq.test_queue.producer_blocked_seconds").count,
            1u);
}

TEST(ExportTest, MetricsToJsonShape) {
  MetricRegistry registry;
  registry.GetCounter("briq.test.n")->Add(2);
  registry.GetHistogram("briq.test.t_seconds", {1.0, 2.0})->Observe(1.5);
  const util::Json json = MetricsToJson(registry.Snapshot());
  const std::string dump = json.Dump();
  EXPECT_NE(dump.find("\"counters\""), std::string::npos);
  EXPECT_NE(dump.find("\"briq.test.n\""), std::string::npos);
  EXPECT_NE(dump.find("\"histograms\""), std::string::npos);
  EXPECT_NE(dump.find("\"bounds\""), std::string::npos);
}

TEST(ExportTest, MetricsTableListsEveryInstrument) {
  MetricRegistry registry;
  registry.GetCounter("briq.test.rows")->Add(5);
  registry.GetGauge("briq.test.depth")->Set(3);
  registry.GetHistogram("briq.test.lat_seconds", {1.0})->Observe(0.25);
  const std::string table = MetricsTable(registry.Snapshot());
  EXPECT_NE(table.find("briq.test.rows"), std::string::npos);
  EXPECT_NE(table.find("briq.test.depth"), std::string::npos);
  EXPECT_NE(table.find("briq.test.lat_seconds"), std::string::npos);
}

TEST(ExportTest, AlignStageSecondsDelta) {
  MetricRegistry registry;
  Histogram* filter =
      registry.GetHistogram("briq.align.filter_seconds", {1.0});
  Histogram* other = registry.GetHistogram("briq.stream.x_seconds", {1.0});
  const MetricsSnapshot before = registry.Snapshot();
  filter->Observe(0.5);
  other->Observe(9.0);  // not an align-stage histogram: ignored
  const MetricsSnapshot after = registry.Snapshot();
  const std::map<std::string, double> delta =
      AlignStageSecondsDelta(before, after);
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_DOUBLE_EQ(delta.at("filter"), 0.5);
}

TEST(ExportTest, EmptyRegistryExportsEmptyButValidShapes) {
  MetricRegistry registry;
  const MetricsSnapshot snapshot = registry.Snapshot();
  const util::Json json = MetricsToJson(snapshot);
  EXPECT_TRUE(json.at("counters").members().empty());
  EXPECT_TRUE(json.at("gauges").members().empty());
  EXPECT_TRUE(json.at("histograms").members().empty());
  // The human-readable view degrades to a header-only table, not a crash.
  EXPECT_FALSE(MetricsTable(snapshot).empty());
}

TEST(ExportTest, AlignStageSecondsDeltaOfIdenticalSnapshotsIsEmpty) {
  MetricRegistry registry;
  registry.GetHistogram("briq.align.filter_seconds", {1.0})->Observe(0.5);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_TRUE(AlignStageSecondsDelta(snapshot, snapshot).empty());
  // Also empty against a same-shape copy taken with no traffic between.
  EXPECT_TRUE(AlignStageSecondsDelta(snapshot, registry.Snapshot()).empty());
}

TEST(HistogramTest, OverflowBeyondLastEdgeLandsInTheExtraSlot) {
  Histogram h({1.0, 2.0});
  h.Observe(2.0);   // inclusive upper edge: still the le=2 bucket
  h.Observe(2.01);  // past every edge
  const HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.counts.size(), 3u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);  // the overflow slot
  EXPECT_EQ(s.count, 2u);
}

TEST(HistogramSnapshotTest, PercentilePicksTheSmallestCoveringEdge) {
  Histogram h(LinearBuckets(0.1, 0.1, 10));
  for (int i = 0; i < 90; ++i) h.Observe(0.25);  // le=0.3 bucket
  for (int i = 0; i < 10; ++i) h.Observe(0.95);  // le=1.0 bucket
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 0.3);
  EXPECT_DOUBLE_EQ(s.Percentile(0.9), 0.3);
  EXPECT_DOUBLE_EQ(s.Percentile(0.95), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 1.0);
}

TEST(HistogramSnapshotTest, PercentileEdgeCases) {
  EXPECT_DOUBLE_EQ(HistogramSnapshot{}.Percentile(0.5), 0.0);  // empty
  Histogram h({1.0});
  h.Observe(5.0);  // only observation is in the overflow slot
  EXPECT_TRUE(std::isinf(h.Snapshot().Percentile(0.5)));
}

#else  // BRIQ_NO_METRICS

TEST(NoMetricsTest, InstrumentsAreInertAndSnapshotsEmpty) {
  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetCounter("briq.test.n")->Add(100);
  EXPECT_EQ(registry.GetCounter("briq.test.n")->Value(), 0u);
  registry.GetGauge("briq.test.g")->Set(5);
  EXPECT_EQ(registry.GetGauge("briq.test.g")->Value(), 0);
  const MetricsSnapshot s = registry.Snapshot();
  EXPECT_TRUE(s.counters.empty());
  EXPECT_TRUE(s.gauges.empty());
  EXPECT_TRUE(s.histograms.empty());
}

TEST(NoMetricsTest, QueueTelemetryObserverIsNull) {
  QueueTelemetry telemetry("briq.test_queue");
  EXPECT_EQ(telemetry.observer(), nullptr);
}

#endif  // BRIQ_NO_METRICS

}  // namespace
}  // namespace briq::obs
