#include "table/table.h"

#include <gtest/gtest.h>

namespace briq::table {
namespace {

Table HealthTable() {
  Table t = Table::FromRows({{"side effects", "male", "female", "total"},
                             {"Rash", "15", "20", "35"},
                             {"Depression", "13", "25", "38"}});
  return t;
}

TEST(TableTest, FromRowsPadsRagged) {
  Table t = Table::FromRows({{"a", "b", "c"}, {"d"}});
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.num_cols(), 3);
  EXPECT_EQ(t.cell(1, 0).raw, "d");
  EXPECT_EQ(t.cell(1, 2).raw, "");
}

TEST(TableTest, FromRowsTrimsCells) {
  Table t = Table::FromRows({{"  x  ", "\t42 "}});
  EXPECT_EQ(t.cell(0, 0).raw, "x");
  EXPECT_EQ(t.cell(0, 1).raw, "42");
}

TEST(TableTest, DetectHeadersFindsHeaderRowAndColumn) {
  Table t = HealthTable();
  t.DetectHeaders();
  EXPECT_TRUE(t.has_header_row());
  EXPECT_TRUE(t.has_header_col());
  EXPECT_TRUE(t.cell(0, 1).is_header);
  EXPECT_TRUE(t.cell(1, 0).is_header);
  EXPECT_FALSE(t.cell(1, 1).is_header);
}

TEST(TableTest, DetectHeadersAllNumericHasNone) {
  Table t = Table::FromRows({{"1", "2"}, {"3", "4"}, {"5", "6"}});
  t.DetectHeaders();
  EXPECT_FALSE(t.has_header_row());
  EXPECT_FALSE(t.has_header_col());
}

TEST(TableTest, AnnotateQuantitiesParsesBodyOnly) {
  Table t = HealthTable();
  t.DetectHeaders();
  t.AnnotateQuantities();
  EXPECT_FALSE(t.cell(0, 1).numeric());  // header "male"
  ASSERT_TRUE(t.cell(1, 1).numeric());
  EXPECT_DOUBLE_EQ(t.cell(1, 1).quantity->value, 15);
  EXPECT_DOUBLE_EQ(t.cell(2, 3).quantity->value, 38);
}

TEST(TableTest, CaptionScaleAppliesToCells) {
  Table t = Table::FromRows(
      {{"Income", "2013", "2012"}, {"Total Revenue", "3,263", "3,193"}});
  t.set_caption("Income gains (in Mio)");
  t.set_header_row(true);
  t.set_header_col(true);
  t.AnnotateQuantities();
  EXPECT_DOUBLE_EQ(t.cell(1, 1).quantity->value, 3.263e9);
  EXPECT_DOUBLE_EQ(t.cell(1, 1).quantity->unnormalized, 3263);
}

TEST(TableTest, CaptionScaleDoesNotTouchPercentCells) {
  Table t = Table::FromRows(
      {{"x", "2Q 2012", "% Change"}, {"Sales", "900", "5%"}});
  t.set_caption("Table 1 ($ Millions)");
  t.set_header_row(true);
  t.set_header_col(true);
  t.AnnotateQuantities();
  EXPECT_DOUBLE_EQ(t.cell(1, 1).quantity->value, 900e6);
  EXPECT_EQ(t.cell(1, 1).quantity->unit, "USD");
  EXPECT_DOUBLE_EQ(t.cell(1, 2).quantity->value, 5);
  EXPECT_EQ(t.cell(1, 2).quantity->unit, "percent");
}

TEST(TableTest, ColumnHeaderCueSetsUnit) {
  Table t = Table::FromRows(
      {{"Model", "Emission (g/km)"}, {"Golf", "122"}});
  t.set_header_row(true);
  t.set_header_col(true);
  t.AnnotateQuantities();
  EXPECT_EQ(t.cell(1, 1).quantity->unit, "g/km");
}

TEST(TableTest, RowAndColumnContentAreDisjointContexts) {
  Table t = HealthTable();
  t.DetectHeaders();
  // Row content = the cells the row passes through (incl. its header cell),
  // but NOT the column headers — those belong to column content only, or
  // every row would share the same vocabulary.
  std::string row = t.RowContent(1);
  EXPECT_NE(row.find("Rash"), std::string::npos);
  EXPECT_EQ(row.find("male"), std::string::npos);
  std::string col = t.ColumnContent(3);
  EXPECT_NE(col.find("total"), std::string::npos);
  EXPECT_EQ(col.find("Rash"), std::string::npos);
}

TEST(TableTest, AllWordsLowercased) {
  Table t = HealthTable();
  t.set_caption("Drug Trial");
  auto words = t.AllWords();
  EXPECT_NE(std::find(words.begin(), words.end(), "rash"), words.end());
  EXPECT_NE(std::find(words.begin(), words.end(), "drug"), words.end());
}

TEST(TableTest, IsBodyCell) {
  Table t = HealthTable();
  t.DetectHeaders();
  EXPECT_FALSE(t.IsBodyCell(0, 1));
  EXPECT_TRUE(t.IsBodyCell(1, 1));
  EXPECT_FALSE(t.IsBodyCell(-1, 0));
  EXPECT_FALSE(t.IsBodyCell(0, 99));
}

TEST(TableTest, EmptyTable) {
  Table t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.num_rows(), 0);
}

TEST(CellRefTest, Ordering) {
  EXPECT_TRUE((CellRef{1, 2} < CellRef{2, 0}));
  EXPECT_TRUE((CellRef{1, 2} < CellRef{1, 3}));
  EXPECT_TRUE((CellRef{1, 2} == CellRef{1, 2}));
}

}  // namespace
}  // namespace briq::table
