// Consolidated edge-case coverage across modules: corner cases that the
// per-module suites don't reach.

#include <gtest/gtest.h>

#include <climits>

#include "corpus/generator.h"
#include "corpus/paper_examples.h"
#include "html/html_lexer.h"
#include "quantity/quantity_parser.h"
#include "table/mention.h"
#include "text/tokenizer.h"
#include "util/string_util.h"

namespace briq {
namespace {

// ---------------------------------------------------------------------------
// util corners
// ---------------------------------------------------------------------------

TEST(ThousandsSeparatorsEdge, Int64Min) {
  // INT64_MIN has no positive counterpart; must not overflow.
  EXPECT_EQ(util::WithThousandsSeparators(INT64_MIN),
            "-9,223,372,036,854,775,808");
  EXPECT_EQ(util::WithThousandsSeparators(INT64_MAX),
            "9,223,372,036,854,775,807");
}

TEST(FormatDoubleEdge, LargeAndTiny) {
  EXPECT_EQ(util::FormatDouble(1e6, 0), "1000000");
  EXPECT_EQ(util::FormatDouble(0.000001, 6), "0.000001");
  EXPECT_EQ(util::FormatDouble(0.0, 3), "0");
}

// ---------------------------------------------------------------------------
// tokenizer / sentence corners
// ---------------------------------------------------------------------------

TEST(TokenizerEdge, TrailingHyphenNotConsumed) {
  auto tokens = text::Tokenize("well- spoken");
  EXPECT_EQ(tokens[0].textual, "well");
  EXPECT_EQ(tokens[1].textual, "-");
}

TEST(TokenizerEdge, NumberEndingInSeparatorStops) {
  auto tokens = text::Tokenize("1,234, and");
  EXPECT_EQ(tokens[0].textual, "1,234");
  EXPECT_EQ(tokens[1].textual, ",");
}

TEST(SentenceSplitEdge, EllipsisAndTrailingSpaces) {
  auto spans = text::SplitSentences("Wait... Really. ");
  EXPECT_GE(spans.size(), 1u);
  // No span extends past the trimmed content.
  for (const auto& s : spans) EXPECT_LE(s.end, 16u);
}

TEST(SentenceSplitEdge, EmptyInput) {
  EXPECT_TRUE(text::SplitSentences("").empty());
  EXPECT_TRUE(text::SplitSentences("   ").empty());
}

// ---------------------------------------------------------------------------
// quantity corners
// ---------------------------------------------------------------------------

TEST(QuantityEdge, ZeroIsAQuantity) {
  auto mentions = quantity::ExtractQuantities("with 0 CO2 emission overall");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_DOUBLE_EQ(mentions[0].value, 0.0);
  EXPECT_EQ(mentions[0].Scale(), 0);  // log10(0) guarded
}

TEST(QuantityEdge, MultipleCurrenciesInOneSentence) {
  auto mentions = quantity::ExtractQuantities(
      "it sells at 37K EUR in Germany and 39K USD in the US");
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].unit, "EUR");
  EXPECT_DOUBLE_EQ(mentions[0].value, 37000);
  EXPECT_EQ(mentions[1].unit, "USD");
  EXPECT_DOUBLE_EQ(mentions[1].value, 39000);
}

TEST(QuantityEdge, PercentBeforeScaleWordNotScaled) {
  // "5% million" is nonsense; the parser must not multiply percents.
  auto mentions = quantity::ExtractQuantities("a fee of 1.5% was charged");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_DOUBLE_EQ(mentions[0].value, 1.5);
}

TEST(QuantityEdge, MentionSurfaceCoversUnit) {
  std::string txt = "priced at $3.26 billion CDN there";
  auto mentions = quantity::ExtractQuantities(txt);
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].surface, "$3.26 billion CDN");
}

TEST(QuantityEdge, CellWithFootnoteMarker) {
  auto q = quantity::ParseCellQuantity("1,234 *");
  ASSERT_TRUE(q.has_value());
  EXPECT_DOUBLE_EQ(q->value, 1234);
}

TEST(QuantityEdge, ApproxNameCoverage) {
  using quantity::ApproxIndicator;
  EXPECT_STREQ(quantity::ApproxIndicatorName(ApproxIndicator::kNone), "none");
  EXPECT_STREQ(quantity::ApproxIndicatorName(ApproxIndicator::kUpperBound),
               "upper_bound");
  EXPECT_STREQ(quantity::ApproxIndicatorName(ApproxIndicator::kLowerBound),
               "lower_bound");
}

// ---------------------------------------------------------------------------
// table mention corners
// ---------------------------------------------------------------------------

TEST(MentionEdge, DebugStringFormats) {
  table::TableMention m;
  m.table_index = 2;
  m.func = table::AggregateFunction::kDiff;
  m.cells = {{1, 3}, {1, 2}};
  m.value = 70e6;
  m.unit = "CDN";
  std::string s = m.DebugString();
  EXPECT_NE(s.find("t2"), std::string::npos);
  EXPECT_NE(s.find("diff"), std::string::npos);
  EXPECT_NE(s.find("(1,3)"), std::string::npos);
  EXPECT_NE(s.find("CDN"), std::string::npos);
}

TEST(MentionEdge, AggregateFunctionNames) {
  using table::AggregateFunction;
  EXPECT_STREQ(table::AggregateFunctionName(AggregateFunction::kAverage),
               "avg");
  EXPECT_STREQ(table::AggregateFunctionName(AggregateFunction::kMax), "max");
  EXPECT_STREQ(table::AggregateFunctionName(AggregateFunction::kMin), "min");
}

// ---------------------------------------------------------------------------
// html corners
// ---------------------------------------------------------------------------

TEST(HtmlEdge, UppercaseEntityAndHexEntity) {
  EXPECT_EQ(html::DecodeEntities("&AMP;"), "&");
  EXPECT_EQ(html::DecodeEntities("&#X41;"), "A");
}

TEST(HtmlEdge, AttributeWithoutValue) {
  auto tokens = html::LexHtml("<td nowrap>x</td>");
  ASSERT_FALSE(tokens.empty());
  EXPECT_EQ(tokens[0].Attribute("nowrap"), "");
  // The attribute exists even though it has no value.
  bool found = false;
  for (const auto& [k, v] : tokens[0].attributes) {
    if (k == "nowrap") found = true;
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// corpus / examples corners
// ---------------------------------------------------------------------------

TEST(RenderHtmlEdge, EscapesSpecialCharacters) {
  corpus::Document doc;
  doc.id = "escape-test";
  doc.paragraphs = {"a < b & c > d"};
  doc.tables.push_back(table::Table::FromRows({{"A&B", "<tag>"}}));
  std::string html = corpus::RenderHtml(doc);
  EXPECT_NE(html.find("a &lt; b &amp; c &gt; d"), std::string::npos);
  EXPECT_NE(html.find("A&amp;B"), std::string::npos);
  EXPECT_NE(html.find("&lt;tag&gt;"), std::string::npos);
}

TEST(PaperExampleEdge, Figure1bRotatedTableAnnotated) {
  corpus::Document doc = corpus::Figure1bEnvironment();
  const table::Table& t = doc.tables[0];
  // Row-header cue "Emission (g/km)" propagates the unit to the row.
  ASSERT_TRUE(t.cell(3, 2).numeric());
  EXPECT_EQ(t.cell(3, 2).quantity->unit, "g/km");
  // Decimal ratings parse with precision.
  EXPECT_EQ(t.cell(5, 1).quantity->precision, 2);
}

TEST(GeneratorEdge, SingleDocumentDeterminism) {
  util::Rng a(99);
  util::Rng b(99);
  corpus::Document da = corpus::GenerateDocument(
      corpus::GetDomainProfile("sports"), "x", &a);
  corpus::Document db = corpus::GenerateDocument(
      corpus::GetDomainProfile("sports"), "x", &b);
  EXPECT_EQ(da.paragraphs, db.paragraphs);
  ASSERT_EQ(da.tables.size(), db.tables.size());
  EXPECT_EQ(da.tables[0].AllContent(), db.tables[0].AllContent());
}

}  // namespace
}  // namespace briq
