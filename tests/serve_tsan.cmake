# Keeps the serving layer's concurrency honest: configures a sub-build
# with -DBRIQ_SANITIZE=thread, builds the requested test binaries (the
# protocol-layer suites link only briq_http, so util + obs + serve compile
# and nothing else), and runs them under TSan. Acceptor/queue/worker
# handoffs, admission-control rejection, and Stop() teardown all execute
# with race detection on.
#
# Expects -DSOURCE_DIR=<repo root>, -DWORKDIR=<scratch build dir>, and
# -DTARGETS=<'|'-separated test binary names> ('|' instead of ';' so the
# list survives add_test argument quoting).

if(NOT SOURCE_DIR OR NOT WORKDIR OR NOT TARGETS)
  message(FATAL_ERROR
    "serve_tsan: SOURCE_DIR, WORKDIR, and TARGETS must be set")
endif()

string(REPLACE "|" ";" test_binaries "${TARGETS}")

execute_process(
  COMMAND "${CMAKE_COMMAND}" -S "${SOURCE_DIR}" -B "${WORKDIR}"
          -DBRIQ_SANITIZE=thread
  RESULT_VARIABLE rv
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR
    "configure with -DBRIQ_SANITIZE=thread failed (${rv}):\n${out}\n${err}")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" --build "${WORKDIR}"
          --target ${test_binaries}
  RESULT_VARIABLE rv
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR
    "build with -DBRIQ_SANITIZE=thread failed (${rv}):\n${out}\n${err}")
endif()

foreach(binary ${test_binaries})
  execute_process(
    COMMAND "${WORKDIR}/tests/${binary}"
    RESULT_VARIABLE rv
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR
      "${binary} failed under TSan (${rv}):\n${out}\n${err}")
  endif()
endforeach()
