# Live /metrics scrape smoke test, run by ctest (see tests/CMakeLists.txt):
# starts `briq_tool align --stream --serve-port 0 --serve-linger 60` in the
# background, reads the ephemeral port off the tool's stdout, scrapes
# /metrics over real HTTP with file(DOWNLOAD), asserts Prometheus text
# format with a briq_align_ family, and ends the linger via /quitquitquit.
#
# Expects -DBRIQ_TOOL=<path to binary> and -DWORKDIR=<scratch dir>.

if(NOT BRIQ_TOOL OR NOT WORKDIR)
  message(FATAL_ERROR "serve_smoke: BRIQ_TOOL and WORKDIR must be set")
endif()

find_program(BASH bash REQUIRED)

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

function(run_tool)
  execute_process(
    COMMAND "${BRIQ_TOOL}" ${ARGN}
    RESULT_VARIABLE rv
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR
      "briq_tool ${ARGN} exited with ${rv}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
endfunction()

run_tool(generate 12 "${WORKDIR}/corpus.json" 7 --compact)
run_tool(shard "${WORKDIR}/corpus.json" "${WORKDIR}/shards" 6)

# Launch the streaming job with a lingering metrics endpoint and remember
# its pid so the test can always clean up.
set(server_log "${WORKDIR}/serve_out.txt")
execute_process(
  COMMAND "${BASH}" -c
    "'${BRIQ_TOOL}' align '${WORKDIR}/shards' --stream --threads 2 \
       --serve-port 0 --serve-linger 60 > '${server_log}' 2>&1 & echo $!"
  OUTPUT_VARIABLE server_pid
  OUTPUT_STRIP_TRAILING_WHITESPACE)

function(cleanup)
  execute_process(
    COMMAND "${BASH}" -c "kill ${server_pid} 2>/dev/null || true")
endfunction()

# The resolved ephemeral port appears on the first stdout line.
set(port "")
foreach(attempt RANGE 60)
  if(EXISTS "${server_log}")
    file(READ "${server_log}" log)
    if(log MATCHES "127\\.0\\.0\\.1:([0-9]+)/metrics")
      set(port "${CMAKE_MATCH_1}")
      break()
    endif()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.5)
endforeach()
if(port STREQUAL "")
  cleanup()
  file(READ "${server_log}" log)
  message(FATAL_ERROR "no serve port announced within 30s; log:\n${log}")
endif()

# Scrape /metrics (retrying: the endpoint is up, but give a slow machine
# some slack) and require Prometheus text format with an align family.
set(scrape "${WORKDIR}/scrape.txt")
set(scraped FALSE)
foreach(attempt RANGE 20)
  file(DOWNLOAD "http://127.0.0.1:${port}/metrics" "${scrape}"
       STATUS status TIMEOUT 10)
  list(GET status 0 status_code)
  if(status_code EQUAL 0)
    file(READ "${scrape}" body)
    if(body MATCHES "briq_align_")
      set(scraped TRUE)
      break()
    endif()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.5)
endforeach()
if(NOT scraped)
  cleanup()
  message(FATAL_ERROR "scraping /metrics never returned a briq_align_ family")
endif()

file(READ "${scrape}" body)
foreach(needle
        "# HELP briq_align_documents_total"
        "# TYPE briq_align_documents_total counter"
        "# TYPE briq_align_align_seconds histogram"
        "briq_align_align_seconds_bucket{le=\"+Inf\"}"
        "briq_align_align_seconds_sum"
        "briq_align_align_seconds_count"
        "# TYPE briq_scrape_timestamp_seconds gauge"
        "briq_snapshot_age_seconds")
  if(NOT body MATCHES "${needle}")
    # MATCHES treats the needle as a regex; escape and retry via FIND.
    string(FIND "${body}" "${needle}" at)
    if(at EQUAL -1)
      cleanup()
      message(FATAL_ERROR "/metrics is missing '${needle}':\n${body}")
    endif()
  endif()
endforeach()

# /healthz answers, then /quitquitquit ends the linger early.
file(DOWNLOAD "http://127.0.0.1:${port}/healthz" "${WORKDIR}/healthz.txt"
     STATUS status TIMEOUT 10)
list(GET status 0 status_code)
if(NOT status_code EQUAL 0)
  cleanup()
  message(FATAL_ERROR "/healthz scrape failed: ${status}")
endif()

file(DOWNLOAD "http://127.0.0.1:${port}/quitquitquit" "${WORKDIR}/quit.txt"
     STATUS status TIMEOUT 10)

# The tool must now exit on its own (well before the 60s linger cap).
set(exited FALSE)
foreach(attempt RANGE 40)
  execute_process(
    COMMAND "${BASH}" -c "kill -0 ${server_pid} 2>/dev/null"
    RESULT_VARIABLE alive)
  if(NOT alive EQUAL 0)
    set(exited TRUE)
    break()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.5)
endforeach()
cleanup()
if(NOT exited)
  message(FATAL_ERROR "briq_tool kept lingering after /quitquitquit")
endif()
