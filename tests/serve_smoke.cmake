# Serving smoke test, run by ctest (see tests/CMakeLists.txt), two phases:
#
# 1. Live /metrics scrape: starts `briq_tool align --stream --serve-port 0
#    --serve-linger 60` in the background, reads the ephemeral port off the
#    tool's stdout, scrapes /metrics over real HTTP with file(DOWNLOAD),
#    asserts Prometheus text format with a briq_align_ family, and ends the
#    linger via /quitquitquit.
# 2. POST /align round-trip: trains a model, boots `briq_tool serve
#    --model` with an access log, POSTs one corpus document over a raw bash
#    /dev/tcp socket (file(DOWNLOAD) cannot POST), byte-compares the
#    response body against `briq_tool align --json --model` on the same
#    document, asserts the client's X-Briq-Trace-Id is echoed, scrapes
#    /statusz and the rolling briq_serve_window_* gauges, and — after
#    /quitquitquit ends the process — validates the access log is
#    well-formed JSONL via `briq_tool logcheck`.
#
# Expects -DBRIQ_TOOL=<path to binary> and -DWORKDIR=<scratch dir>.

if(NOT BRIQ_TOOL OR NOT WORKDIR)
  message(FATAL_ERROR "serve_smoke: BRIQ_TOOL and WORKDIR must be set")
endif()

find_program(BASH bash REQUIRED)

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

function(run_tool)
  execute_process(
    COMMAND "${BRIQ_TOOL}" ${ARGN}
    RESULT_VARIABLE rv
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR
      "briq_tool ${ARGN} exited with ${rv}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
endfunction()

run_tool(generate 12 "${WORKDIR}/corpus.json" 7 --compact)
run_tool(shard "${WORKDIR}/corpus.json" "${WORKDIR}/shards" 6)

# Launch the streaming job with a lingering metrics endpoint and remember
# its pid so the test can always clean up.
set(server_log "${WORKDIR}/serve_out.txt")
execute_process(
  COMMAND "${BASH}" -c
    "'${BRIQ_TOOL}' align '${WORKDIR}/shards' --stream --threads 2 \
       --serve-port 0 --serve-linger 60 > '${server_log}' 2>&1 & echo $!"
  OUTPUT_VARIABLE server_pid
  OUTPUT_STRIP_TRAILING_WHITESPACE)

function(cleanup)
  execute_process(
    COMMAND "${BASH}" -c "kill ${server_pid} 2>/dev/null || true")
endfunction()

# The resolved ephemeral port appears on the first stdout line.
set(port "")
foreach(attempt RANGE 60)
  if(EXISTS "${server_log}")
    file(READ "${server_log}" log)
    if(log MATCHES "127\\.0\\.0\\.1:([0-9]+)/metrics")
      set(port "${CMAKE_MATCH_1}")
      break()
    endif()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.5)
endforeach()
if(port STREQUAL "")
  cleanup()
  file(READ "${server_log}" log)
  message(FATAL_ERROR "no serve port announced within 30s; log:\n${log}")
endif()

# Scrape /metrics (retrying: the endpoint is up, but give a slow machine
# some slack) and require Prometheus text format with an align family.
set(scrape "${WORKDIR}/scrape.txt")
set(scraped FALSE)
foreach(attempt RANGE 20)
  file(DOWNLOAD "http://127.0.0.1:${port}/metrics" "${scrape}"
       STATUS status TIMEOUT 10)
  list(GET status 0 status_code)
  if(status_code EQUAL 0)
    file(READ "${scrape}" body)
    if(body MATCHES "briq_align_")
      set(scraped TRUE)
      break()
    endif()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.5)
endforeach()
if(NOT scraped)
  cleanup()
  message(FATAL_ERROR "scraping /metrics never returned a briq_align_ family")
endif()

file(READ "${scrape}" body)
foreach(needle
        "# HELP briq_align_documents_total"
        "# TYPE briq_align_documents_total counter"
        "# TYPE briq_align_align_seconds histogram"
        "briq_align_align_seconds_bucket{le=\"+Inf\"}"
        "briq_align_align_seconds_sum"
        "briq_align_align_seconds_count"
        "# TYPE briq_scrape_timestamp_seconds gauge"
        "briq_snapshot_age_seconds")
  if(NOT body MATCHES "${needle}")
    # MATCHES treats the needle as a regex; escape and retry via FIND.
    string(FIND "${body}" "${needle}" at)
    if(at EQUAL -1)
      cleanup()
      message(FATAL_ERROR "/metrics is missing '${needle}':\n${body}")
    endif()
  endif()
endforeach()

# /healthz answers, then /quitquitquit ends the linger early.
file(DOWNLOAD "http://127.0.0.1:${port}/healthz" "${WORKDIR}/healthz.txt"
     STATUS status TIMEOUT 10)
list(GET status 0 status_code)
if(NOT status_code EQUAL 0)
  cleanup()
  message(FATAL_ERROR "/healthz scrape failed: ${status}")
endif()

file(DOWNLOAD "http://127.0.0.1:${port}/quitquitquit" "${WORKDIR}/quit.txt"
     STATUS status TIMEOUT 10)

# The tool must now exit on its own (well before the 60s linger cap).
set(exited FALSE)
foreach(attempt RANGE 40)
  execute_process(
    COMMAND "${BASH}" -c "kill -0 ${server_pid} 2>/dev/null"
    RESULT_VARIABLE alive)
  if(NOT alive EQUAL 0)
    set(exited TRUE)
    break()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.5)
endforeach()
cleanup()
if(NOT exited)
  message(FATAL_ERROR "briq_tool kept lingering after /quitquitquit")
endif()

# ---------------------------------------------------------------------------
# Phase 2: POST /align round-trip against `briq_tool serve --model`.

run_tool(train "${WORKDIR}/corpus.json" --model-out "${WORKDIR}/model.briq")

# Offline expectation: align --json --model prints exactly the canonical
# serving JSON for the chosen document.
set(doc_index 10)
execute_process(
  COMMAND "${BRIQ_TOOL}" align "${WORKDIR}/corpus.json" ${doc_index}
          --json --model "${WORKDIR}/model.briq"
  RESULT_VARIABLE rv
  OUTPUT_FILE "${WORKDIR}/expected.json"
  ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "align --json --model exited with ${rv}:\n${err}")
endif()

# The same document, extracted from the corpus as the request body.
find_program(PYTHON3 python3 REQUIRED)
execute_process(
  COMMAND "${PYTHON3}" -c
    "import json, sys
corpus = json.load(open(sys.argv[1]))
open(sys.argv[2], 'w').write(json.dumps(corpus['documents'][int(sys.argv[3])]))"
    "${WORKDIR}/corpus.json" "${WORKDIR}/doc.json" "${doc_index}"
  RESULT_VARIABLE rv
  ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "extracting document ${doc_index} failed: ${err}")
endif()

set(align_log "${WORKDIR}/align_serve_out.txt")
execute_process(
  COMMAND "${BASH}" -c
    "'${BRIQ_TOOL}' serve --model '${WORKDIR}/model.briq' --port 0 \
       --serve-threads 2 --serve-linger 60 \
       --access-log '${WORKDIR}/access.jsonl' --slow-request-seconds 0 \
       > '${align_log}' 2>&1 & echo $!"
  OUTPUT_VARIABLE align_pid
  OUTPUT_STRIP_TRAILING_WHITESPACE)

function(cleanup_align)
  execute_process(
    COMMAND "${BASH}" -c "kill ${align_pid} 2>/dev/null || true")
endfunction()

set(align_port "")
foreach(attempt RANGE 60)
  if(EXISTS "${align_log}")
    file(READ "${align_log}" log)
    if(log MATCHES "127\\.0\\.0\\.1:([0-9]+)/metrics")
      set(align_port "${CMAKE_MATCH_1}")
      break()
    endif()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.5)
endforeach()
if(align_port STREQUAL "")
  cleanup_align()
  file(READ "${align_log}" log)
  message(FATAL_ERROR "serve --model announced no port within 30s; log:\n${log}")
endif()

# file(DOWNLOAD) cannot POST, so speak HTTP/1.1 over bash's /dev/tcp. The
# response body (everything past the blank line) must be byte-identical to
# the offline rendering.
set(posted FALSE)
foreach(attempt RANGE 20)
  execute_process(
    COMMAND "${BASH}" -c
      "set -e
       len=$(wc -c < '${WORKDIR}/doc.json')
       exec 3<>/dev/tcp/127.0.0.1/${align_port}
       { printf 'POST /align HTTP/1.1\\r\\nHost: smoke\\r\\nX-Briq-Trace-Id: smoke-trace-1\\r\\nContent-Type: application/json\\r\\nContent-Length: %s\\r\\nConnection: close\\r\\n\\r\\n' \"$len\"
         cat '${WORKDIR}/doc.json'
       } >&3
       cat <&3 > '${WORKDIR}/response_raw.txt'
       exec 3<&- 3>&-"
    RESULT_VARIABLE rv
    ERROR_VARIABLE err)
  if(rv EQUAL 0)
    file(READ "${WORKDIR}/response_raw.txt" raw)
    if(raw MATCHES "HTTP/1\\.1 200")
      set(posted TRUE)
      break()
    endif()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.5)
endforeach()
if(NOT posted)
  cleanup_align()
  message(FATAL_ERROR "POST /align never answered 200; last error: ${err}")
endif()

execute_process(
  COMMAND "${BASH}" -c
    "sed '1,/^\\r*$/d' '${WORKDIR}/response_raw.txt' > '${WORKDIR}/response_body.json'"
  RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
  cleanup_align()
  message(FATAL_ERROR "splitting the response body failed")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files
          "${WORKDIR}/response_body.json" "${WORKDIR}/expected.json"
  RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
  cleanup_align()
  file(READ "${WORKDIR}/response_body.json" got)
  file(READ "${WORKDIR}/expected.json" want)
  message(FATAL_ERROR
    "POST /align is not byte-identical to align --json:\ngot:\n${got}\nwant:\n${want}")
endif()

# The response must echo the trace id the client sent.
file(READ "${WORKDIR}/response_raw.txt" raw)
string(FIND "${raw}" "X-Briq-Trace-Id: smoke-trace-1" at)
if(at EQUAL -1)
  cleanup_align()
  message(FATAL_ERROR
    "POST /align did not echo X-Briq-Trace-Id: smoke-trace-1:\n${raw}")
endif()
string(FIND "${raw}" "Server-Timing: " at)
if(at EQUAL -1)
  cleanup_align()
  message(FATAL_ERROR "POST /align carried no Server-Timing header:\n${raw}")
endif()

# /statusz renders the debug page with the build info and the served route.
file(DOWNLOAD "http://127.0.0.1:${align_port}/statusz"
     "${WORKDIR}/statusz.html" STATUS status TIMEOUT 10)
list(GET status 0 status_code)
if(NOT status_code EQUAL 0)
  cleanup_align()
  message(FATAL_ERROR "/statusz scrape failed: ${status}")
endif()
file(READ "${WORKDIR}/statusz.html" statusz)
foreach(needle "<html" "briq_tool serve" "/align" "smoke-trace-1")
  string(FIND "${statusz}" "${needle}" at)
  if(at EQUAL -1)
    cleanup_align()
    message(FATAL_ERROR "/statusz is missing '${needle}':\n${statusz}")
  endif()
endforeach()

# /metrics carries the rolling-window gauge families next to the
# cumulative registry ones.
file(DOWNLOAD "http://127.0.0.1:${align_port}/metrics"
     "${WORKDIR}/align_metrics.txt" STATUS status TIMEOUT 10)
list(GET status 0 status_code)
if(NOT status_code EQUAL 0)
  cleanup_align()
  message(FATAL_ERROR "serve /metrics scrape failed: ${status}")
endif()
file(READ "${WORKDIR}/align_metrics.txt" metrics)
foreach(needle
        "# TYPE briq_serve_window_p99_seconds gauge"
        "briq_serve_window_qps"
        "briq_serve_window_error_rate"
        "route=\"/align\"")
  string(FIND "${metrics}" "${needle}" at)
  if(at EQUAL -1)
    cleanup_align()
    message(FATAL_ERROR "serve /metrics is missing '${needle}':\n${metrics}")
  endif()
endforeach()

# /quitquitquit must terminate the model server within the deadline.
file(DOWNLOAD "http://127.0.0.1:${align_port}/quitquitquit"
     "${WORKDIR}/align_quit.txt" STATUS status TIMEOUT 10)
set(align_exited FALSE)
foreach(attempt RANGE 40)
  execute_process(
    COMMAND "${BASH}" -c "kill -0 ${align_pid} 2>/dev/null"
    RESULT_VARIABLE alive)
  if(NOT alive EQUAL 0)
    set(align_exited TRUE)
    break()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.5)
endforeach()
cleanup_align()
if(NOT align_exited)
  message(FATAL_ERROR "serve --model kept running after /quitquitquit")
endif()

# The access log must be well-formed JSONL with the full per-request
# schema, including the traced POST.
if(NOT EXISTS "${WORKDIR}/access.jsonl")
  message(FATAL_ERROR "serve --access-log wrote no access.jsonl")
endif()
execute_process(
  COMMAND "${BRIQ_TOOL}" logcheck "${WORKDIR}/access.jsonl"
          --require trace_id,method,path,status,bytes_in,bytes_out,wall_seconds,queue_wait_seconds,unix_seconds,stages
  RESULT_VARIABLE rv
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  file(READ "${WORKDIR}/access.jsonl" log_body)
  message(FATAL_ERROR
    "logcheck rejected the access log: ${err}\nlog:\n${log_body}")
endif()
file(READ "${WORKDIR}/access.jsonl" log_body)
string(FIND "${log_body}" "\"trace_id\":\"smoke-trace-1\"" at)
if(at EQUAL -1)
  # Key order inside a line is the serializer's choice; fall back to the
  # bare id before failing.
  string(FIND "${log_body}" "smoke-trace-1" at)
  if(at EQUAL -1)
    message(FATAL_ERROR
      "access log has no line for the traced POST:\n${log_body}")
  endif()
endif()
