#include "ml/calibration.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace briq::ml {
namespace {

TEST(ReliabilityDiagramTest, BinsPartitionScores) {
  std::vector<double> scores = {0.05, 0.15, 0.95, 0.55, 1.0, 0.0};
  std::vector<int> labels = {0, 0, 1, 1, 1, 0};
  auto bins = ReliabilityDiagram(scores, labels, 10);
  ASSERT_EQ(bins.size(), 10u);
  size_t total = 0;
  for (const auto& b : bins) total += b.count;
  EXPECT_EQ(total, scores.size());
  // 1.0 lands in the last bin, 0.0 in the first.
  EXPECT_EQ(bins[0].count, 2u);   // 0.05 and 0.0
  EXPECT_EQ(bins[9].count, 2u);   // 0.95 and 1.0
  EXPECT_DOUBLE_EQ(bins[9].fraction_positive, 1.0);
}

TEST(EceTest, PerfectCalibrationIsZero) {
  // Scores equal to the empirical rate in each bin.
  util::Rng rng(5);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 20000; ++i) {
    double p = (i % 10) / 10.0 + 0.05;  // bin centers
    scores.push_back(p);
    labels.push_back(rng.Bernoulli(p) ? 1 : 0);
  }
  EXPECT_LT(ExpectedCalibrationError(scores, labels), 0.02);
}

TEST(EceTest, OverconfidenceDetected) {
  // Predicts 0.95 but the true rate is 0.5.
  util::Rng rng(6);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 5000; ++i) {
    scores.push_back(0.95);
    labels.push_back(rng.Bernoulli(0.5) ? 1 : 0);
  }
  EXPECT_GT(ExpectedCalibrationError(scores, labels), 0.4);
}

TEST(BrierScoreTest, KnownValues) {
  EXPECT_DOUBLE_EQ(BrierScore({1.0, 0.0}, {1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(BrierScore({0.5, 0.5}, {1, 0}), 0.25);
  EXPECT_DOUBLE_EQ(BrierScore({0.0}, {1}), 1.0);
  EXPECT_DOUBLE_EQ(BrierScore({}, {}), 0.0);
}

TEST(RenderTest, ProducesLinePerBin) {
  auto bins = ReliabilityDiagram({0.1, 0.9}, {0, 1}, 5);
  std::string out = RenderReliabilityDiagram(bins);
  // Header + 5 bins.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
}

}  // namespace
}  // namespace briq::ml
