#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace briq::text {
namespace {

std::vector<std::string> Surfaces(const std::vector<Token>& tokens) {
  std::vector<std::string> out;
  for (const auto& t : tokens) out.push_back(t.textual);
  return out;
}

TEST(TokenizerTest, WordsAndNumbers) {
  auto tokens = Tokenize("Sales were up 5 percent");
  EXPECT_EQ(Surfaces(tokens),
            (std::vector<std::string>{"Sales", "were", "up", "5", "percent"}));
  EXPECT_EQ(tokens[3].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[0].kind, TokenKind::kWord);
}

TEST(TokenizerTest, NumberKeepsSeparatorsAndDecimals) {
  auto tokens = Tokenize("1,144,716 and 2.74 and 2,29,866");
  EXPECT_EQ(tokens[0].textual, "1,144,716");
  EXPECT_EQ(tokens[2].textual, "2.74");
  EXPECT_EQ(tokens[4].textual, "2,29,866");
  for (auto i : {0, 2, 4}) EXPECT_EQ(tokens[i].kind, TokenKind::kNumber);
}

TEST(TokenizerTest, TrailingPunctuationNotPartOfNumber) {
  auto tokens = Tokenize("was 38.");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].textual, "38");
  EXPECT_EQ(tokens[2].textual, ".");
}

TEST(TokenizerTest, HyphenatedWordsStayTogether) {
  // "A3" splits into word "A" + adjacent number "3" (identifier handling
  // relies on that adjacency); hyphens/apostrophes inside words survive.
  auto tokens = Tokenize("the A3 e-tron don't");
  EXPECT_EQ(tokens[1].textual, "A");
  EXPECT_EQ(tokens[2].textual, "3");
  EXPECT_EQ(tokens[3].textual, "e-tron");
  EXPECT_EQ(tokens[4].textual, "don't");
}

TEST(TokenizerTest, CurrencySymbolsAreSymbols) {
  auto tokens = Tokenize("$500 and \xE2\x82\xAC" "37 and 5%");
  EXPECT_EQ(tokens[0].textual, "$");
  EXPECT_EQ(tokens[0].kind, TokenKind::kSymbol);
  EXPECT_EQ(tokens[3].textual, "\xE2\x82\xAC");
  EXPECT_EQ(tokens[3].kind, TokenKind::kSymbol);
  // '%' after the number.
  EXPECT_EQ(tokens.back().textual, "%");
  EXPECT_EQ(tokens.back().kind, TokenKind::kSymbol);
}

TEST(TokenizerTest, SpansMatchSource) {
  std::string s = "Rash 15 20 35";
  for (const Token& t : Tokenize(s)) {
    EXPECT_EQ(s.substr(t.span.begin, t.span.length()), t.textual);
  }
}

TEST(TokenizerTest, PlusMinusSymbol) {
  auto tokens = Tokenize("5 \xC2\xB1 1 km");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].textual, "\xC2\xB1");
  EXPECT_EQ(tokens[1].kind, TokenKind::kSymbol);
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("   \t\n ").empty());
}

TEST(SpanTest, OverlapAndContains) {
  Span a{2, 5};
  Span b{4, 8};
  Span c{5, 9};
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_FALSE(a.Overlaps(c));
  EXPECT_TRUE(a.Contains(2));
  EXPECT_FALSE(a.Contains(5));
  EXPECT_EQ(a.length(), 3u);
}

TEST(SentenceSplitTest, BasicSplit) {
  auto spans = SplitSentences("First sentence. Second one! Third?");
  ASSERT_EQ(spans.size(), 3u);
}

TEST(SentenceSplitTest, DecimalPointsDoNotSplit) {
  std::string s = "The value was 3.26 billion. Next year it fell.";
  auto spans = SplitSentences(s);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(s.substr(spans[0].begin, spans[0].length()),
            "The value was 3.26 billion.");
}

TEST(SentenceSplitTest, AbbreviationsDoNotSplit) {
  auto spans = SplitSentences("It cost ca. 500 dollars at the time.");
  EXPECT_EQ(spans.size(), 1u);
}

TEST(SentenceSplitTest, SentencesCoverTextInOrder) {
  std::string s = "Alpha beta. Gamma delta. Epsilon.";
  auto spans = SplitSentences(s);
  ASSERT_EQ(spans.size(), 3u);
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].begin, spans[i - 1].end);
  }
}

TEST(LowercaseWordsTest, OnlyWords) {
  EXPECT_EQ(LowercaseWords("Total of 123 Patients"),
            (std::vector<std::string>{"total", "of", "patients"}));
}

}  // namespace
}  // namespace briq::text
