#include "table/virtual_cell.h"

#include <gtest/gtest.h>

#include <cmath>

namespace briq::table {
namespace {

Table AnnotatedHealthTable() {
  Table t = Table::FromRows({{"side effects", "male", "female", "total"},
                             {"Rash", "15", "20", "35"},
                             {"Depression", "13", "25", "38"},
                             {"Hypertension", "19", "15", "34"},
                             {"Nausea", "5", "6", "11"},
                             {"Eye Disorders", "2", "3", "5"}});
  t.set_header_row(true);
  t.set_header_col(true);
  t.AnnotateQuantities();
  return t;
}

const TableMention* Find(const std::vector<TableMention>& mentions,
                         AggregateFunction func,
                         const std::vector<CellRef>& cells) {
  for (const auto& m : mentions) {
    if (m.func == func && m.cells == cells) return &m;
  }
  return nullptr;
}

TEST(EvaluateAggregateTest, AllFunctions) {
  EXPECT_DOUBLE_EQ(EvaluateAggregate(AggregateFunction::kSum, {1, 2, 3}), 6);
  EXPECT_DOUBLE_EQ(EvaluateAggregate(AggregateFunction::kAverage, {1, 2, 3}),
                   2);
  EXPECT_DOUBLE_EQ(EvaluateAggregate(AggregateFunction::kMax, {1, 5, 3}), 5);
  EXPECT_DOUBLE_EQ(EvaluateAggregate(AggregateFunction::kMin, {4, 5, 3}), 3);
  EXPECT_DOUBLE_EQ(EvaluateAggregate(AggregateFunction::kDiff, {947, 900}),
                   47);
  EXPECT_DOUBLE_EQ(
      EvaluateAggregate(AggregateFunction::kPercentage, {2907, 5911}),
      2907.0 / 5911.0 * 100.0);
  // Change ratio: (a - b) / b in percent — consistent with the paper's
  // Fig. 5a (33.65%) and "increased by 1.5%" examples.
  EXPECT_NEAR(
      EvaluateAggregate(AggregateFunction::kChangeRatio, {246725, 184611}),
      33.6460, 1e-3);
  EXPECT_NEAR(EvaluateAggregate(AggregateFunction::kChangeRatio, {890, 876}),
              1.5982, 1e-3);
}

TEST(EvaluateAggregateTest, DegenerateInputs) {
  EXPECT_TRUE(std::isnan(EvaluateAggregate(AggregateFunction::kSum, {})));
  EXPECT_TRUE(std::isnan(
      EvaluateAggregate(AggregateFunction::kPercentage, {1, 0})));
  EXPECT_TRUE(std::isnan(
      EvaluateAggregate(AggregateFunction::kChangeRatio, {1, 0})));
  EXPECT_TRUE(std::isnan(EvaluateAggregate(AggregateFunction::kDiff, {1})));
  EXPECT_TRUE(
      std::isnan(EvaluateAggregate(AggregateFunction::kNone, {1, 2})));
}

TEST(VirtualCellTest, SingleCellMentionsCoverNumericBody) {
  Table t = AnnotatedHealthTable();
  VirtualCellStats stats;
  auto mentions = GenerateTableMentions(t, 0, {}, &stats);
  EXPECT_EQ(stats.single_cells, 15u);  // 5 rows x 3 numeric columns
  const TableMention* m =
      Find(mentions, AggregateFunction::kNone, {CellRef{2, 3}});
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->value, 38);
  EXPECT_EQ(m->surface, "38");
}

TEST(VirtualCellTest, ColumnSumMatchesPaperExample) {
  Table t = AnnotatedHealthTable();
  auto mentions = GenerateTableMentions(t, 0, {});
  // "total of 123 patients" = sum of the total column.
  std::vector<CellRef> total_col = {{1, 3}, {2, 3}, {3, 3}, {4, 3}, {5, 3}};
  const TableMention* m = Find(mentions, AggregateFunction::kSum, total_col);
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->value, 123);
  EXPECT_TRUE(m->is_virtual());
}

TEST(VirtualCellTest, RowSumsGenerated) {
  Table t = AnnotatedHealthTable();
  auto mentions = GenerateTableMentions(t, 0, {});
  std::vector<CellRef> rash_row = {{1, 1}, {1, 2}, {1, 3}};
  const TableMention* m = Find(mentions, AggregateFunction::kSum, rash_row);
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->value, 70);  // 15 + 20 + 35
}

TEST(VirtualCellTest, PairAggregatesSameRowAndColumn) {
  Table t = AnnotatedHealthTable();
  auto mentions = GenerateTableMentions(t, 0, {});
  // diff within a row.
  const TableMention* d =
      Find(mentions, AggregateFunction::kDiff, {CellRef{1, 2}, CellRef{1, 1}});
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->value, 5);  // 20 - 15
  // percentage within a column.
  const TableMention* p = Find(mentions, AggregateFunction::kPercentage,
                               {CellRef{2, 3}, CellRef{1, 3}});
  ASSERT_NE(p, nullptr);
  EXPECT_NEAR(p->value, 38.0 / 35.0 * 100.0, 1e-9);
  EXPECT_EQ(p->unit, "percent");
}

TEST(VirtualCellTest, NoCrossRowColumnPairs) {
  Table t = AnnotatedHealthTable();
  auto mentions = GenerateTableMentions(t, 0, {});
  // (1,1) and (2,2) share neither row nor column: no pair mention.
  EXPECT_EQ(Find(mentions, AggregateFunction::kDiff,
                 {CellRef{1, 1}, CellRef{2, 2}}),
            nullptr);
}

TEST(VirtualCellTest, DisabledFunctionsNotGenerated) {
  Table t = AnnotatedHealthTable();
  VirtualCellOptions options;
  options.enable_sum = false;
  options.enable_diff = false;
  options.enable_percentage = false;
  options.enable_change_ratio = false;
  VirtualCellStats stats;
  auto mentions = GenerateTableMentions(t, 0, options, &stats);
  EXPECT_EQ(stats.virtual_total(), 0u);
  EXPECT_EQ(mentions.size(), stats.single_cells);
}

TEST(VirtualCellTest, ExtendedSettingAddsAvgMinMax) {
  Table t = AnnotatedHealthTable();
  VirtualCellOptions options;
  options.enable_average = true;
  options.enable_min_max = true;
  auto mentions = GenerateTableMentions(t, 0, options);
  std::vector<CellRef> total_col = {{1, 3}, {2, 3}, {3, 3}, {4, 3}, {5, 3}};
  const TableMention* avg =
      Find(mentions, AggregateFunction::kAverage, total_col);
  ASSERT_NE(avg, nullptr);
  EXPECT_DOUBLE_EQ(avg->value, 123.0 / 5);
  const TableMention* mx = Find(mentions, AggregateFunction::kMax, total_col);
  ASSERT_NE(mx, nullptr);
  EXPECT_DOUBLE_EQ(mx->value, 38);
  const TableMention* mn = Find(mentions, AggregateFunction::kMin, total_col);
  ASSERT_NE(mn, nullptr);
  EXPECT_DOUBLE_EQ(mn->value, 5);
}

TEST(VirtualCellTest, CapCountsDroppedPairs) {
  Table t = AnnotatedHealthTable();
  VirtualCellOptions options;
  options.max_pair_mentions = 10;
  VirtualCellStats stats;
  GenerateTableMentions(t, 0, options, &stats);
  EXPECT_LE(stats.pair_aggregates, 10u);
  EXPECT_GT(stats.dropped_by_cap, 0u);  // the cap must be *reported*
}

TEST(VirtualCellTest, MentionCountScalesQuadratically) {
  // O(r * c^2 + c * r^2) pair space (paper §II-A).
  Table small = Table::FromRows({{"h", "a", "b"}, {"r", "1", "2"}});
  small.set_header_row(true);
  small.set_header_col(true);
  small.AnnotateQuantities();
  VirtualCellStats small_stats;
  GenerateTableMentions(small, 0, {}, &small_stats);

  Table t = AnnotatedHealthTable();
  VirtualCellStats big_stats;
  GenerateTableMentions(t, 0, {}, &big_stats);
  EXPECT_GT(big_stats.pair_aggregates, 10 * small_stats.pair_aggregates);
}

TEST(VirtualCellTest, SumUnitInheritedWhenUniform) {
  Table t = Table::FromRows(
      {{"x", "2012", "2013"}, {"Sales", "$900", "$947"}});
  t.set_header_row(true);
  t.set_header_col(true);
  t.AnnotateQuantities();
  auto mentions = GenerateTableMentions(t, 0, {});
  const TableMention* m = Find(mentions, AggregateFunction::kSum,
                               {CellRef{1, 1}, CellRef{1, 2}});
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->unit, "USD");
  EXPECT_DOUBLE_EQ(m->value, 1847);
}

TEST(TableMentionTest, SameTargetSemantics) {
  TableMention a;
  a.table_index = 0;
  a.func = AggregateFunction::kDiff;
  a.cells = {{1, 1}, {1, 2}};
  TableMention b = a;
  EXPECT_TRUE(a.SameTarget(b));
  b.cells = {{1, 2}, {1, 1}};  // ordered pairs: order matters
  EXPECT_FALSE(a.SameTarget(b));
  b = a;
  b.table_index = 1;
  EXPECT_FALSE(a.SameTarget(b));
}

}  // namespace
}  // namespace briq::table
