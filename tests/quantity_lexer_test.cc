// CQE-grade lexer suite: direct LexNumber cases (scientific notation,
// fractions, ranges, locale separators, malformed UTF-8), extraction-level
// extended forms, the generator round-trip property (every messy surface
// lexes back to its target cell's base-unit value), and end-to-end unit
// conversion (kg↔t, $↔M$, %↔bps) through PrepareDocument → features →
// adaptive filtering.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/extraction.h"
#include "core/features.h"
#include "core/filtering.h"
#include "core/pipeline.h"
#include "corpus/domain_profile.h"
#include "corpus/generator.h"
#include "quantity/quantity_lexer.h"
#include "quantity/quantity_parser.h"
#include "util/random.h"

namespace briq::quantity {
namespace {

LexedNumber MustLex(std::string_view s, const LexOptions& options = {}) {
  auto r = LexNumber(s, 0, options);
  EXPECT_TRUE(r.ok()) << "failed to lex: " << s;
  return r.ok() ? r.value() : LexedNumber{};
}

// ---------------------------------------------------------------------------
// Scientific notation
// ---------------------------------------------------------------------------

TEST(QuantityLexerTest, ENotation) {
  LexedNumber n = MustLex("3.2e6");
  EXPECT_DOUBLE_EQ(n.value, 3.2e6);
  EXPECT_TRUE(n.scientific);
  EXPECT_FALSE(n.is_interval);
  EXPECT_EQ(n.end, 5u);
}

TEST(QuantityLexerTest, TimesTenNotation) {
  LexedNumber n = MustLex("4 × 10^5");
  EXPECT_DOUBLE_EQ(n.value, 4e5);
  EXPECT_TRUE(n.scientific);
}

TEST(QuantityLexerTest, NegativeExponent) {
  LexedNumber n = MustLex("1.5e-3");
  EXPECT_DOUBLE_EQ(n.value, 1.5e-3);
  EXPECT_TRUE(n.scientific);
}

TEST(QuantityLexerTest, ScientificOffKeepsMantissaOnly) {
  LexOptions opts;
  opts.scientific = false;
  LexedNumber n = MustLex("3.2e6", opts);
  EXPECT_DOUBLE_EQ(n.value, 3.2);
  EXPECT_FALSE(n.scientific);
}

// ---------------------------------------------------------------------------
// Fractions
// ---------------------------------------------------------------------------

TEST(QuantityLexerTest, VulgarFraction) {
  LexedNumber n = MustLex("½");
  EXPECT_DOUBLE_EQ(n.value, 0.5);
  EXPECT_TRUE(n.fraction);
}

TEST(QuantityLexerTest, AsciiFraction) {
  LexedNumber n = MustLex("3/4");
  EXPECT_DOUBLE_EQ(n.value, 0.75);
  EXPECT_TRUE(n.fraction);
}

TEST(QuantityLexerTest, MixedNumberVulgar) {
  LexedNumber n = MustLex("2 ¾");
  EXPECT_DOUBLE_EQ(n.value, 2.75);
  EXPECT_TRUE(n.fraction);
}

TEST(QuantityLexerTest, MixedNumberGluedVulgar) {
  LexedNumber n = MustLex("2¾");
  EXPECT_DOUBLE_EQ(n.value, 2.75);
}

TEST(QuantityLexerTest, MixedNumberAscii) {
  LexedNumber n = MustLex("2 3/4");
  EXPECT_DOUBLE_EQ(n.value, 2.75);
  EXPECT_TRUE(n.fraction);
}

// ---------------------------------------------------------------------------
// Ranges and plus-minus intervals
// ---------------------------------------------------------------------------

TEST(QuantityLexerTest, EnDashRange) {
  LexedNumber n = MustLex("3–5");
  EXPECT_TRUE(n.is_interval);
  EXPECT_DOUBLE_EQ(n.value_lo, 3.0);
  EXPECT_DOUBLE_EQ(n.value_hi, 5.0);
  EXPECT_GE(n.value, 3.0);
  EXPECT_LE(n.value, 5.0);
}

TEST(QuantityLexerTest, HyphenRange) {
  LexedNumber n = MustLex("480000-490000");
  EXPECT_TRUE(n.is_interval);
  EXPECT_DOUBLE_EQ(n.value_lo, 480000.0);
  EXPECT_DOUBLE_EQ(n.value_hi, 490000.0);
}

TEST(QuantityLexerTest, PlusMinus) {
  LexedNumber n = MustLex("5 ± 1");
  EXPECT_TRUE(n.is_interval);
  EXPECT_TRUE(n.plus_minus);
  EXPECT_DOUBLE_EQ(n.value, 5.0);
  EXPECT_DOUBLE_EQ(n.value_lo, 4.0);
  EXPECT_DOUBLE_EQ(n.value_hi, 6.0);
}

TEST(QuantityLexerTest, RangesOffLexesPointOnly) {
  LexOptions opts;
  opts.ranges = false;
  LexedNumber n = MustLex("3–5", opts);
  EXPECT_FALSE(n.is_interval);
  EXPECT_DOUBLE_EQ(n.value, 3.0);
}

// ---------------------------------------------------------------------------
// Signed values
// ---------------------------------------------------------------------------

TEST(QuantityLexerTest, NegativeValue) {
  LexedNumber n = MustLex("-3.5");
  EXPECT_DOUBLE_EQ(n.value, -3.5);
  EXPECT_TRUE(n.negative);
}

// ---------------------------------------------------------------------------
// Locale-variant separators
// ---------------------------------------------------------------------------

TEST(QuantityLexerTest, UsSeparatorsAuto) {
  EXPECT_DOUBLE_EQ(MustLex("1,234.56").value, 1234.56);
  EXPECT_TRUE(MustLex("1,234.56").had_separators);
}

TEST(QuantityLexerTest, EuropeanGroupingAuto) {
  // Two dot-groups are unambiguous European grouping.
  EXPECT_DOUBLE_EQ(MustLex("1.234.567").value, 1234567.0);
}

TEST(QuantityLexerTest, MixedSeparatorsNeedExplicitLocale) {
  // kAuto refuses to guess a mixed dot-then-comma token (the historical
  // decision procedure); the explicit European hint resolves it.
  EXPECT_FALSE(LexNumber("1.234,56").ok());
  LexOptions eu;
  eu.locale = LocaleHint::kEuropean;
  EXPECT_DOUBLE_EQ(MustLex("1.234,56", eu).value, 1234.56);
  EXPECT_DOUBLE_EQ(MustLex("1.234.567,89", eu).value, 1234567.89);
}

TEST(QuantityLexerTest, LocaleHintForcesInterpretation) {
  LexOptions us;
  us.locale = LocaleHint::kUS;
  EXPECT_DOUBLE_EQ(MustLex("1.234", us).value, 1.234);
  LexOptions eu;
  eu.locale = LocaleHint::kEuropean;
  EXPECT_DOUBLE_EQ(MustLex("1.234", eu).value, 1234.0);
}

// ---------------------------------------------------------------------------
// Malformed / truncated UTF-8 must never crash or over-consume
// ---------------------------------------------------------------------------

TEST(QuantityLexerTest, TruncatedMultibyteAfterNumber) {
  // "3" followed by the first two bytes of an en-dash.
  LexedNumber n = MustLex(std::string("3\xE2\x80"));
  EXPECT_DOUBLE_EQ(n.value, 3.0);
  EXPECT_FALSE(n.is_interval);
  EXPECT_LE(n.end, 3u);
}

TEST(QuantityLexerTest, LoneContinuationByteIsNotANumber) {
  auto r = LexNumber(std::string("\xC2"));
  EXPECT_FALSE(r.ok());
}

TEST(QuantityLexerTest, DanglingPlusMinus) {
  LexedNumber n = MustLex(std::string("5 \xC2\xB1"));
  EXPECT_DOUBLE_EQ(n.value, 5.0);
  EXPECT_FALSE(n.is_interval);
}

TEST(QuantityLexerTest, AdversarialSeparatorRuns) {
  // Trailing separators must not be swallowed into the number.
  LexedNumber n = MustLex("1,234,");
  EXPECT_DOUBLE_EQ(n.value, 1234.0);
  EXPECT_LE(n.end, 6u);
  EXPECT_FALSE(LexNumber("").ok());
  EXPECT_FALSE(LexNumber(",5", 0).ok());
}

// ---------------------------------------------------------------------------
// Extraction-level extended forms
// ---------------------------------------------------------------------------

ExtractionOptions Extended() {
  ExtractionOptions opts;
  opts.extended_forms = true;
  return opts;
}

TEST(ExtendedExtractionTest, ScientificInSentence) {
  auto qs = ExtractQuantities("Production reached 3.2e6 units.", Extended());
  ASSERT_EQ(qs.size(), 1u);
  EXPECT_DOUBLE_EQ(qs[0].value, 3.2e6);
}

TEST(ExtendedExtractionTest, TimesTenWithMassUnit) {
  auto qs = ExtractQuantities("roughly 4 × 10^5 tonnes of ore", Extended());
  ASSERT_EQ(qs.size(), 1u);
  EXPECT_DOUBLE_EQ(qs[0].value, 4e5);
  EXPECT_EQ(qs[0].unit, "tonne");
  EXPECT_EQ(qs[0].unit_category, UnitCategory::kMass);
  EXPECT_DOUBLE_EQ(qs[0].unit_to_base, 1e3);
  EXPECT_DOUBLE_EQ(qs[0].normalized().value, 4e8);  // kg
}

TEST(ExtendedExtractionTest, MixedFractionWithUnit) {
  auto qs = ExtractQuantities("a dry weight of 2 ¾ tonnes", Extended());
  ASSERT_EQ(qs.size(), 1u);
  EXPECT_DOUBLE_EQ(qs[0].value, 2.75);
  EXPECT_EQ(qs[0].unit, "tonne");
}

TEST(ExtendedExtractionTest, RangeWithScaleWord) {
  auto qs = ExtractQuantities("between 3–5 million tests", Extended());
  ASSERT_EQ(qs.size(), 1u);
  EXPECT_TRUE(qs[0].is_interval());
  EXPECT_DOUBLE_EQ(qs[0].value_lo, 3e6);
  EXPECT_DOUBLE_EQ(qs[0].value_hi, 5e6);
}

TEST(ExtendedExtractionTest, PlusMinusWithLengthUnit) {
  auto qs = ExtractQuantities("a distance of 5 ± 1 km", Extended());
  ASSERT_EQ(qs.size(), 1u);
  EXPECT_TRUE(qs[0].is_interval());
  EXPECT_EQ(qs[0].unit_category, UnitCategory::kLength);
  EXPECT_DOUBLE_EQ(qs[0].unit_to_base, 1e3);  // km -> m
  EXPECT_DOUBLE_EQ(qs[0].value_lo * qs[0].unit_to_base, 4000.0);
  EXPECT_DOUBLE_EQ(qs[0].value_hi * qs[0].unit_to_base, 6000.0);
}

TEST(ExtendedExtractionTest, EuropeanSeparatorsCurrency) {
  auto qs = ExtractQuantities("revenues of $1.234.567 were booked", Extended());
  ASSERT_EQ(qs.size(), 1u);
  EXPECT_DOUBLE_EQ(qs[0].value, 1234567.0);
  EXPECT_EQ(qs[0].unit_category, UnitCategory::kCurrency);
}

TEST(ExtendedExtractionTest, ScaledCurrencySymbol) {
  // "M$" folds into the value at parse time: currency stays base-unit $.
  auto qs = ExtractQuantities("the unit sold 484 M$ of hardware", Extended());
  ASSERT_EQ(qs.size(), 1u);
  EXPECT_DOUBLE_EQ(qs[0].value, 484e6);
  EXPECT_EQ(qs[0].unit, "USD");
  EXPECT_DOUBLE_EQ(qs[0].unit_to_base, 1.0);
}

TEST(ExtendedExtractionTest, BasisPointsFoldToPercent) {
  auto qs = ExtractQuantities("margins improved by 60 bps", Extended());
  ASSERT_EQ(qs.size(), 1u);
  EXPECT_DOUBLE_EQ(qs[0].value, 0.6);
  EXPECT_EQ(qs[0].unit, "percent");
}

TEST(ExtendedExtractionTest, DefaultOptionsKeepLegacyLanguage) {
  // With extended_forms off (the default), the historical lexer runs: no
  // scientific reassembly, no intervals, no fraction glyphs.
  auto qs = ExtractQuantities("Production reached 3.2e6 units.");
  for (const auto& q : qs) {
    EXPECT_NE(q.value, 3.2e6);
    EXPECT_FALSE(q.is_interval());
  }
  for (const auto& q : ExtractQuantities("a yield of ½ was typical")) {
    EXPECT_NE(q.value, 0.5);
  }
}

}  // namespace
}  // namespace briq::quantity

// ---------------------------------------------------------------------------
// Generator round-trip property
// ---------------------------------------------------------------------------

namespace briq::corpus {
namespace {

// Every ground-truth single-cell surface emitted by the messy profiles must
// lex back (under extended options) to a quantity consistent with its
// target cell in base units: exact/scaled forms to the exact base value,
// interval forms to an interval containing it, approximate forms to within
// the one-significant-step rounding the generator applies.
TEST(MessyRoundTripTest, SurfacesLexBackToTargetCells) {
  quantity::ExtractionOptions opts;
  opts.extended_forms = true;
  for (const char* name : {"research", "markets"}) {
    const DomainProfile& profile = GetDomainProfile(name);
    ASSERT_TRUE(profile.messy_numeric_forms);
    size_t checked = 0;
    size_t intervals = 0;
    size_t scientific = 0;
    size_t fractions = 0;
    size_t converted = 0;
    for (uint64_t seed : {11u, 23u, 47u, 101u, 433u, 997u}) {
      util::Rng rng(seed);
      for (int d = 0; d < 6; ++d) {
        Document doc = GenerateDocument(profile, "rt", &rng);
        for (const GroundTruthAlignment& gt : doc.ground_truth) {
          if (gt.target.func != table::AggregateFunction::kNone) continue;
          ASSERT_EQ(gt.target.cells.size(), 1u);
          const table::Cell& cell =
              doc.tables[gt.target.table_index].cell(gt.target.cells[0]);
          ASSERT_TRUE(cell.quantity.has_value()) << cell.raw;
          const double base =
              cell.quantity->value * cell.quantity->unit_to_base;

          auto qs = quantity::ExtractQuantities(gt.surface, opts);
          ASSERT_FALSE(qs.empty()) << "surface did not lex: " << gt.surface;
          const quantity::ParsedQuantity& q = qs[0];
          ++checked;
          intervals += q.is_interval();
          bool sci = gt.surface.find(" × 10^") != std::string::npos;
          for (size_t p = 1; !sci && p + 1 < gt.surface.size(); ++p) {
            sci = gt.surface[p] == 'e' &&
                  std::isdigit(static_cast<unsigned char>(gt.surface[p - 1])) &&
                  std::isdigit(static_cast<unsigned char>(gt.surface[p + 1]));
          }
          scientific += sci;
          fractions += gt.surface.find('/') != std::string::npos ||
                       gt.surface.find("\xC2\xBC") != std::string::npos ||
                       gt.surface.find("\xC2\xBD") != std::string::npos ||
                       gt.surface.find("\xC2\xBE") != std::string::npos;
          converted += gt.surface.find(" kg") != std::string::npos ||
                       gt.surface.find("M$") != std::string::npos ||
                       gt.surface.find("bn$") != std::string::npos ||
                       gt.surface.find("B$") != std::string::npos;

          if (q.is_interval()) {
            double lo = q.value_lo * q.unit_to_base;
            double hi = q.value_hi * q.unit_to_base;
            if (lo > hi) std::swap(lo, hi);
            EXPECT_TRUE(lo <= base && base <= hi)
                << gt.surface << " interval [" << lo << ", " << hi
                << "] misses " << base;
          } else if (gt.realization == Realization::kExact ||
                     gt.realization == Realization::kScaled) {
            EXPECT_LE(quantity::RelativeDifference(q.value * q.unit_to_base,
                                                   base),
                      1e-9)
                << gt.surface << " != cell " << cell.raw;
          } else {
            // Approximate point forms are rounded at one significant step.
            EXPECT_LE(quantity::RelativeDifference(q.value * q.unit_to_base,
                                                   base),
                      0.5)
                << gt.surface << " too far from cell " << cell.raw;
          }
        }
      }
    }
    // The property test must actually exercise the messy surface space.
    EXPECT_GT(checked, 100u) << name;
    EXPECT_GT(intervals, 0u) << name;
    if (profile.p_scientific > 0.0) {
      EXPECT_GT(scientific, 0u) << name;
    }
    if (profile.p_fraction > 0.0) {
      EXPECT_GT(fractions, 0u) << name;
    }
    EXPECT_GT(converted, 0u) << name;
  }
}

// Legacy profiles must not emit any extended-form surface: their documents
// are part of the bit-identical parity corpus.
TEST(MessyRoundTripTest, LegacyProfilesStayLegacy) {
  for (const DomainProfile& profile : AllDomainProfiles()) {
    if (profile.messy_numeric_forms) continue;
    util::Rng rng(5);
    for (int d = 0; d < 3; ++d) {
      Document doc = GenerateDocument(profile, "legacy", &rng);
      for (const GroundTruthAlignment& gt : doc.ground_truth) {
        EXPECT_EQ(gt.surface.find("×"), std::string::npos) << gt.surface;
        EXPECT_EQ(gt.surface.find("±"), std::string::npos) << gt.surface;
        EXPECT_EQ(gt.surface.find("–"), std::string::npos) << gt.surface;
      }
    }
  }
}

}  // namespace
}  // namespace briq::corpus

// ---------------------------------------------------------------------------
// End-to-end unit conversion: PrepareDocument → features → filtering
// ---------------------------------------------------------------------------

namespace briq::core {
namespace {

corpus::Document MakeConversionDoc(
    std::vector<std::vector<std::string>> rows, const std::string& pre,
    const std::string& mention, const std::string& post, table::CellRef cell) {
  corpus::Document doc;
  doc.id = "conv";
  doc.domain = "test";
  table::Table t = table::Table::FromRows(std::move(rows));
  t.set_header_row(true);
  t.set_header_col(true);
  t.AnnotateQuantities();
  doc.tables.push_back(std::move(t));

  corpus::GroundTruthAlignment gt;
  gt.paragraph = 0;
  gt.span = text::Span{pre.size(), pre.size() + mention.size()};
  gt.surface = mention;
  gt.target = corpus::GroundTruthTarget{0, table::AggregateFunction::kNone,
                                        {cell}};
  doc.ground_truth.push_back(std::move(gt));
  doc.paragraphs.push_back(pre + mention + post);
  return doc;
}

struct ConversionCase {
  const char* label;
  corpus::Document doc;
  double text_base_value;  // identifies the text mention, in base units
};

std::vector<ConversionCase> ConversionCases() {
  std::vector<ConversionCase> cases;
  cases.push_back(
      {"kg<->t",
       MakeConversionDoc({{"Material", "Mass (tonnes)"},
                          {"Feedstock", "2.75"},
                          {"Residue", "1.5"}},
                         "The feedstock charge weighed ", "2750 kg",
                         " in total.", {1, 1}),
       2750.0});
  cases.push_back(
      {"$<->M$",
       MakeConversionDoc({{"Segment", "Revenue"},
                          {"Hardware", "$484,000,000"},
                          {"Services", "$91,000,000"}},
                         "Hardware brought in ", "484 M$",
                         " over the year.", {1, 1}),
       484e6});
  cases.push_back(
      {"%<->bps",
       MakeConversionDoc({{"Metric", "Share"},
                          {"Margin", "0.6%"},
                          {"Growth", "2.4%"}},
                         "The margin improved by ", "60 bps",
                         " year on year.", {1, 1}),
       0.6});
  return cases;
}

// Locates the text mention whose base value matches, and the single-cell
// table mention over `cell`. Returns {text_idx, table_idx}.
std::pair<size_t, size_t> LocatePair(const PreparedDocument& prepared,
                                     double text_base_value,
                                     table::CellRef cell) {
  size_t text_idx = prepared.text_mentions.size();
  for (size_t i = 0; i < prepared.text_mentions.size(); ++i) {
    const auto& q = prepared.text_mentions[i].q;
    if (std::fabs(q.value * q.unit_to_base - text_base_value) <
        1e-9 * std::fabs(text_base_value)) {
      text_idx = i;
      break;
    }
  }
  EXPECT_LT(text_idx, prepared.text_mentions.size());
  size_t table_idx = prepared.table_mentions.size();
  for (size_t j = 0; j < prepared.table_mentions.size(); ++j) {
    const auto& tm = prepared.table_mentions[j];
    if (!tm.is_virtual() && tm.cells.size() == 1 && tm.cells[0] == cell) {
      table_idx = j;
      break;
    }
  }
  EXPECT_LT(table_idx, prepared.table_mentions.size());
  return {text_idx, table_idx};
}

TEST(UnitConversionE2ETest, ConvertedPairsScoreAsValueAndUnitMatches) {
  BriqConfig config;
  config.extraction.extended_forms = true;
  for (ConversionCase& c : ConversionCases()) {
    PreparedDocument prepared = PrepareDocument(c.doc, config);
    auto [text_idx, table_idx] =
        LocatePair(prepared, c.text_base_value, c.doc.ground_truth[0].target.cells[0]);

    FeatureComputer features(prepared, config);
    std::vector<double> f = features.ComputeAll(text_idx, table_idx);
    ASSERT_EQ(f.size(), static_cast<size_t>(kNumPairFeatures)) << c.label;
    EXPECT_LE(f[5], 1e-9) << c.label << ": f6 must vanish in base units";
    EXPECT_DOUBLE_EQ(f[7], 3.0) << c.label << ": f8 must be a strong match";
  }
}

TEST(UnitConversionE2ETest, ConvertedPairsSurviveAdaptiveFilter) {
  // Train a small system on the legacy corpus, then filter the conversion
  // documents: base-unit distances keep the converted pair alive through
  // the value pruning and the candidate pre-index.
  BriqConfig config;
  corpus::CorpusOptions options;
  options.num_documents = 60;
  options.seed = 404;
  corpus::Corpus corpus = corpus::GenerateCorpus(options);
  std::vector<PreparedDocument> prepared;
  for (const auto& d : corpus.documents) {
    prepared.push_back(PrepareDocument(d, config));
  }
  std::vector<const PreparedDocument*> pointers;
  for (const auto& d : prepared) pointers.push_back(&d);
  BriqSystem system(config);
  ASSERT_TRUE(system.Train(pointers).ok());

  BriqConfig extended = system.config();
  extended.extraction.extended_forms = true;
  for (ConversionCase& c : ConversionCases()) {
    PreparedDocument doc = PrepareDocument(c.doc, extended);
    auto [text_idx, table_idx] = LocatePair(
        doc, c.text_base_value, c.doc.ground_truth[0].target.cells[0]);
    FeatureComputer features(doc, extended);
    AdaptiveFilter filter(&extended, &system.tagger(), &system.classifier());
    auto candidates = filter.Filter(doc, features, nullptr);
    ASSERT_EQ(candidates.size(), doc.text_mentions.size()) << c.label;
    bool survived = false;
    for (const Candidate& cand : candidates[text_idx]) {
      if (cand.table_idx == table_idx) survived = true;
    }
    EXPECT_TRUE(survived) << c.label
                          << ": converted pair pruned by the filter";
  }
}

}  // namespace
}  // namespace briq::core
