// The serving contract: a POST /align response must be byte-identical to
// what the offline tool renders for the same document and model, with one
// worker or many, for document-JSON and raw-HTML inputs alike. Both paths
// go through serve::AlignDocumentJson / AlignHtmlJson, and this suite
// pins that equivalence over a real socket.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "corpus/generator.h"
#include "corpus/serialization.h"
#include "serve/align_service.h"
#include "serve/http_client.h"
#include "serve/http_server.h"
#include "serve/router.h"
#include "util/json.h"

namespace briq {
namespace {

using core::BriqConfig;
using core::BriqSystem;
using core::PreparedDocument;

std::string TempModelPath() {
  return "/tmp/briq_serve_parity_model_" + std::to_string(getpid()) + ".briq";
}

// One trained system (restored from a saved model file, as the real server
// does) shared by every test in the suite — training dominates runtime.
class ServeParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::CorpusOptions options;
    options.num_documents = 16;
    options.seed = 20190408;  // ICDE'19 deadline-flavored seed
    corpus_ = new corpus::Corpus(corpus::GenerateCorpus(options));

    BriqConfig config;
    BriqSystem trainer(config);
    std::vector<PreparedDocument> prepared;
    for (size_t i = 0; i < 12; ++i) {
      prepared.push_back(
          core::PrepareDocument(corpus_->documents[i], config));
    }
    std::vector<const PreparedDocument*> train;
    for (const PreparedDocument& p : prepared) train.push_back(&p);
    ASSERT_TRUE(trainer.Train(train).ok());

    // Round-trip through the model file: the server under test serves what
    // `briq_tool serve --model` would actually load.
    const std::string path = TempModelPath();
    ASSERT_TRUE(trainer.SaveModel(path).ok());
    system_ = new BriqSystem(config);
    ASSERT_TRUE(system_->LoadModel(path).ok());
    std::remove(path.c_str());
  }

  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
    delete corpus_;
    corpus_ = nullptr;
  }

  // The held-out documents the tool and the server must agree on.
  static std::vector<const corpus::Document*> TestDocs() {
    std::vector<const corpus::Document*> docs;
    for (size_t i = 12; i < corpus_->documents.size(); ++i) {
      docs.push_back(&corpus_->documents[i]);
    }
    return docs;
  }

  static std::unique_ptr<serve::HttpServer> StartServer(int num_threads) {
    serve::Router router;
    serve::RegisterAlignRoute(&router, system_);
    serve::HttpServerOptions options;
    options.num_threads = num_threads;
    auto server = std::make_unique<serve::HttpServer>(std::move(router), options);
    EXPECT_TRUE(server->Start().ok());
    return server;
  }

  static corpus::Corpus* corpus_;
  static BriqSystem* system_;
};

corpus::Corpus* ServeParityTest::corpus_ = nullptr;
BriqSystem* ServeParityTest::system_ = nullptr;

TEST_F(ServeParityTest, SingleWorkerMatchesOfflineRendering) {
  auto server = StartServer(/*num_threads=*/1);
  auto client = serve::HttpClient::Connect(server->port());
  ASSERT_TRUE(client.ok());
  for (const corpus::Document* doc : TestDocs()) {
    const std::string expected = serve::AlignDocumentJson(*system_, *doc);
    auto response = client->Request(
        "POST", "/align", corpus::DocumentToJson(*doc).Dump(),
        {{"Content-Type", "application/json"}});
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status, 200) << response->body;
    EXPECT_EQ(response->body, expected) << "doc " << doc->id;
  }
  server->Stop();
}

TEST_F(ServeParityTest, MultiWorkerConcurrentClientsStayByteIdentical) {
  auto server = StartServer(/*num_threads=*/4);
  const auto docs = TestDocs();
  std::vector<std::string> expected;
  expected.reserve(docs.size());
  for (const corpus::Document* doc : docs) {
    expected.push_back(serve::AlignDocumentJson(*system_, *doc));
  }

  constexpr int kClients = 4;
  constexpr int kRounds = 3;
  std::vector<std::string> failures(kClients);  // empty = clean
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = serve::HttpClient::Connect(server->port());
      if (!client.ok()) {
        failures[c] = "connect: " + client.status().ToString();
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < docs.size(); ++i) {
          auto response = client->Request(
              "POST", "/align", corpus::DocumentToJson(*docs[i]).Dump(),
              {{"Content-Type", "application/json"}});
          if (!response.ok()) {
            failures[c] = "doc " + std::to_string(i) + ": " +
                          response.status().ToString();
            return;
          }
          if (response->status != 200) {
            failures[c] = "doc " + std::to_string(i) + ": status " +
                          std::to_string(response->status);
            return;
          }
          if (response->body != expected[i]) {
            failures[c] = "doc " + std::to_string(i) + ": body diverged";
            return;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }
  EXPECT_GE(server->requests_served(),
            static_cast<size_t>(kClients * kRounds * docs.size()));
  server->Stop();
}

TEST_F(ServeParityTest, HtmlBodyMatchesOfflineHtmlRendering) {
  auto server = StartServer(/*num_threads=*/2);
  auto client = serve::HttpClient::Connect(server->port());
  ASSERT_TRUE(client.ok());
  for (const corpus::Document* doc : TestDocs()) {
    const std::string html = corpus::RenderHtml(*doc);
    const std::string expected = serve::AlignHtmlJson(*system_, html);
    auto response = client->Request("POST", "/align", html,
                                    {{"Content-Type", "text/html"}});
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status, 200) << response->body;
    EXPECT_EQ(response->body, expected) << "doc " << doc->id;
  }
  server->Stop();
}

TEST_F(ServeParityTest, JsonWrappedHtmlTakesTheHtmlPath) {
  auto server = StartServer(/*num_threads=*/1);
  auto client = serve::HttpClient::Connect(server->port());
  ASSERT_TRUE(client.ok());
  const corpus::Document* doc = TestDocs().front();
  const std::string html = corpus::RenderHtml(*doc);
  util::Json request = util::Json::Object();
  request.Set("html", util::Json(html));
  auto response = client->Request("POST", "/align", request.Dump(),
                                  {{"Content-Type", "application/json"}});
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200) << response->body;
  EXPECT_EQ(response->body, serve::AlignHtmlJson(*system_, html));
  server->Stop();
}

TEST_F(ServeParityTest, MalformedDocumentJsonIs400) {
  auto server = StartServer(/*num_threads=*/1);
  auto client = serve::HttpClient::Connect(server->port());
  ASSERT_TRUE(client.ok());
  // Syntactically broken JSON and a non-object document both get 400; the
  // connection survives either (400 is a routing answer, not a framing
  // error), so one keep-alive client can probe both.
  auto broken = client->Request("POST", "/align", "{not json",
                                {{"Content-Type", "application/json"}});
  ASSERT_TRUE(broken.ok());
  EXPECT_EQ(broken->status, 400);
  auto non_object = client->Request("POST", "/align", "[1,2,3]",
                                    {{"Content-Type", "application/json"}});
  ASSERT_TRUE(non_object.ok());
  EXPECT_EQ(non_object->status, 400);
  server->Stop();
}

TEST(ServeWithoutModelTest, UntrainedSystemAnswers503) {
  serve::Router router;
  serve::RegisterAlignRoute(&router, nullptr);
  serve::HttpServerOptions options;
  options.num_threads = 1;
  serve::HttpServer server(std::move(router), options);
  ASSERT_TRUE(server.Start().ok());
  auto client = serve::HttpClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto response = client->Request("POST", "/align", "{}",
                                  {{"Content-Type", "application/json"}});
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 503);
  EXPECT_FALSE(response->Header("retry-after").empty());
  server.Stop();
}

}  // namespace
}  // namespace briq
