// Protocol-level coverage for the serving layer: the incremental
// RequestParser, response serialization, Router dispatch, and a live
// HttpServer exercised over loopback sockets — keep-alive, pipelining,
// malformed framing, torn headers, and 503 admission control.

#include "serve/http_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/http.h"
#include "serve/http_client.h"
#include "serve/router.h"
#include "serve/serve_stats.h"
#include "serve/statusz.h"

namespace briq::serve {
namespace {

// ---------------------------------------------------------------------------
// RequestParser

RequestParser::Outcome FeedAll(RequestParser* parser, const std::string& raw) {
  parser->Feed(raw.data(), raw.size());
  return parser->Next();
}

TEST(RequestParserTest, ParsesASimpleGet) {
  RequestParser parser;
  ASSERT_EQ(FeedAll(&parser, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"),
            RequestParser::Outcome::kRequest);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().path, "/healthz");
  EXPECT_EQ(parser.request().version, "HTTP/1.1");
  EXPECT_EQ(parser.request().Header("host"), "x");
  EXPECT_TRUE(parser.request().KeepAlive());
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(RequestParserTest, ParsesAPostBody) {
  RequestParser parser;
  ASSERT_EQ(FeedAll(&parser,
                    "POST /align HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"),
            RequestParser::Outcome::kRequest);
  EXPECT_EQ(parser.request().body, "hello");
}

TEST(RequestParserTest, TornHeadersDeliveredByteByByte) {
  const std::string raw =
      "POST /align HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Length: 4\r\n"
      "\r\n"
      "briq";
  RequestParser parser;
  // Every prefix short of the full message must say kNeedMore.
  for (size_t i = 0; i + 1 < raw.size(); ++i) {
    parser.Feed(&raw[i], 1);
    ASSERT_EQ(parser.Next(), RequestParser::Outcome::kNeedMore)
        << "premature completion after byte " << i;
  }
  parser.Feed(&raw[raw.size() - 1], 1);
  ASSERT_EQ(parser.Next(), RequestParser::Outcome::kRequest);
  EXPECT_EQ(parser.request().path, "/align");
  EXPECT_EQ(parser.request().body, "briq");
}

TEST(RequestParserTest, PipelinedRequestsComeOutOneAtATime) {
  RequestParser parser;
  const std::string raw =
      "GET /a HTTP/1.1\r\n\r\n"
      "POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nok"
      "GET /c HTTP/1.1\r\n\r\n";
  parser.Feed(raw.data(), raw.size());
  ASSERT_EQ(parser.Next(), RequestParser::Outcome::kRequest);
  EXPECT_EQ(parser.request().path, "/a");
  ASSERT_EQ(parser.Next(), RequestParser::Outcome::kRequest);
  EXPECT_EQ(parser.request().path, "/b");
  EXPECT_EQ(parser.request().body, "ok");
  ASSERT_EQ(parser.Next(), RequestParser::Outcome::kRequest);
  EXPECT_EQ(parser.request().path, "/c");
  EXPECT_EQ(parser.Next(), RequestParser::Outcome::kNeedMore);
}

TEST(RequestParserTest, MalformedRequestLineIs400) {
  RequestParser parser;
  ASSERT_EQ(FeedAll(&parser, "NONSENSE\r\n\r\n"),
            RequestParser::Outcome::kError);
  EXPECT_EQ(parser.error_response().status, 400);
  // The error latches: further feeding cannot resurrect the parser.
  ASSERT_EQ(FeedAll(&parser, "GET / HTTP/1.1\r\n\r\n"),
            RequestParser::Outcome::kError);
}

TEST(RequestParserTest, UnsupportedVersionIs400) {
  RequestParser parser;
  ASSERT_EQ(FeedAll(&parser, "GET / HTTP/2.0\r\n\r\n"),
            RequestParser::Outcome::kError);
  EXPECT_EQ(parser.error_response().status, 400);
}

TEST(RequestParserTest, NonNumericContentLengthIs400) {
  RequestParser parser;
  ASSERT_EQ(
      FeedAll(&parser,
              "POST /align HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
      RequestParser::Outcome::kError);
  EXPECT_EQ(parser.error_response().status, 400);
}

TEST(RequestParserTest, PostWithoutContentLengthIs411) {
  RequestParser parser;
  ASSERT_EQ(FeedAll(&parser, "POST /align HTTP/1.1\r\nHost: x\r\n\r\n"),
            RequestParser::Outcome::kError);
  EXPECT_EQ(parser.error_response().status, 411);
}

TEST(RequestParserTest, ZeroContentLengthPostIsAValidEmptyBody) {
  RequestParser parser;
  ASSERT_EQ(FeedAll(&parser,
                    "POST /align HTTP/1.1\r\nContent-Length: 0\r\n\r\n"),
            RequestParser::Outcome::kRequest);
  EXPECT_TRUE(parser.request().body.empty());
}

TEST(RequestParserTest, OversizedBodyIs413) {
  RequestParser::Limits limits;
  limits.max_body_bytes = 16;
  RequestParser parser(limits);
  ASSERT_EQ(FeedAll(&parser,
                    "POST /align HTTP/1.1\r\nContent-Length: 17\r\n\r\n"),
            RequestParser::Outcome::kError);
  EXPECT_EQ(parser.error_response().status, 413);
}

TEST(RequestParserTest, OversizedHeadIs431) {
  RequestParser::Limits limits;
  limits.max_head_bytes = 64;
  RequestParser parser(limits);
  std::string raw = "GET / HTTP/1.1\r\nX-Pad: ";
  raw.append(200, 'a');
  raw += "\r\n\r\n";
  ASSERT_EQ(FeedAll(&parser, raw), RequestParser::Outcome::kError);
  EXPECT_EQ(parser.error_response().status, 431);
}

TEST(RequestParserTest, TransferEncodingIs501) {
  RequestParser parser;
  ASSERT_EQ(
      FeedAll(&parser,
              "POST /align HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
      RequestParser::Outcome::kError);
  EXPECT_EQ(parser.error_response().status, 501);
}

TEST(RequestParserTest, ConnectionCloseOverridesKeepAliveDefault) {
  RequestParser parser;
  ASSERT_EQ(FeedAll(&parser, "GET / HTTP/1.1\r\nConnection: close\r\n\r\n"),
            RequestParser::Outcome::kRequest);
  EXPECT_FALSE(parser.request().KeepAlive());
}

TEST(SerializeResponseTest, EmitsContentLengthAndConnectionHeaders) {
  HttpResponse response = HttpResponse::Text(200, "ok\n");
  const std::string keep = SerializeResponse(response, /*keep_alive=*/true);
  EXPECT_NE(keep.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(keep.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(keep.find("Connection: keep-alive\r\n"), std::string::npos);
  const std::string close = SerializeResponse(response, /*keep_alive=*/false);
  EXPECT_NE(close.find("Connection: close\r\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Router

HttpRequest MakeRequest(const std::string& method, const std::string& path) {
  HttpRequest request;
  request.method = method;
  request.path = path;
  request.version = "HTTP/1.1";
  return request;
}

TEST(RouterTest, DispatchesUnknownPathTo404) {
  Router router;
  router.Handle("GET", "/known",
                [](const HttpRequest&) { return HttpResponse::Text(200, "k"); });
  EXPECT_EQ(router.Dispatch(MakeRequest("GET", "/unknown")).status, 404);
}

TEST(RouterTest, WrongMethodGets405WithAllowHeader) {
  Router router;
  router.Handle("GET", "/thing",
                [](const HttpRequest&) { return HttpResponse::Text(200, "g"); });
  router.Handle("POST", "/thing",
                [](const HttpRequest&) { return HttpResponse::Text(200, "p"); });
  HttpResponse response = router.Dispatch(MakeRequest("DELETE", "/thing"));
  EXPECT_EQ(response.status, 405);
  EXPECT_EQ(response.extra_headers["Allow"], "GET, POST");
}

TEST(RouterTest, HandlerExceptionBecomes500) {
  Router router;
  router.Handle("GET", "/boom", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("kaput");
  });
  EXPECT_EQ(router.Dispatch(MakeRequest("GET", "/boom")).status, 500);
}

TEST(RouterTest, ContextHandlersSeeTheRequestContext) {
  Router router;
  router.Handle("GET", "/id",
                [](const HttpRequest&, RequestContext& context) {
                  return HttpResponse::Text(200, context.trace_id);
                });
  RequestContext context;
  context.trace_id = "ctx-42";
  EXPECT_EQ(router.Dispatch(MakeRequest("GET", "/id"), context).body,
            "ctx-42");
  // The context-free overload mints a generated id for the dispatch.
  const HttpResponse legacy = router.Dispatch(MakeRequest("GET", "/id"));
  EXPECT_EQ(legacy.body.size(), 16u);
}

TEST(RouterTest, TraceIdValidation) {
  EXPECT_TRUE(IsValidTraceId("abc-DEF_019"));
  EXPECT_TRUE(IsValidTraceId(GenerateTraceId()));
  EXPECT_FALSE(IsValidTraceId(""));
  EXPECT_FALSE(IsValidTraceId("has space"));
  EXPECT_FALSE(IsValidTraceId("semi;colon"));
  EXPECT_FALSE(IsValidTraceId(std::string(65, 'a')));  // > 64 chars
  EXPECT_NE(GenerateTraceId(), GenerateTraceId());
}

TEST(RouterTest, HasPathKnowsRegisteredPaths) {
  Router router;
  router.Handle("GET", "/known",
                [](const HttpRequest&) { return HttpResponse::Text(200, "k"); });
  EXPECT_TRUE(router.HasPath("/known"));
  EXPECT_FALSE(router.HasPath("/unknown"));
}

// ---------------------------------------------------------------------------
// ServeStats

TEST(ServeStatsTest, AggregatesWindowsPerRouteAndInTotal) {
  ServeStats stats(/*window_seconds=*/60.0, /*slow_capacity=*/4);
  stats.RecordRequest("/align", 200, 0.010);
  stats.RecordRequest("/align", 500, 0.020);
  stats.RecordRequest("/metrics", 200, 0.001);
#ifndef BRIQ_NO_METRICS
  const WindowStats total = stats.Window();
  EXPECT_EQ(total.requests, 3u);
  EXPECT_EQ(total.errors, 1u);
  EXPECT_GT(total.qps, 0.0);
  EXPECT_NEAR(total.error_rate, 1.0 / 3.0, 1e-9);
  EXPECT_GT(total.p99_seconds, 0.0);

  const auto by_route = stats.WindowByRoute();
  ASSERT_EQ(by_route.size(), 2u);
  EXPECT_EQ(by_route[0].first, "/align");
  EXPECT_EQ(by_route[0].second.requests, 2u);
  EXPECT_EQ(by_route[0].second.errors, 1u);
  EXPECT_EQ(by_route[1].first, "/metrics");
  EXPECT_EQ(by_route[1].second.errors, 0u);

  const std::string gauges = stats.PrometheusWindowGauges();
  EXPECT_NE(gauges.find("briq_serve_window_p99_seconds"), std::string::npos);
  EXPECT_NE(gauges.find("briq_serve_window_qps"), std::string::npos);
  EXPECT_NE(gauges.find("route=\"/align\""), std::string::npos);
#else
  EXPECT_EQ(stats.Window().requests, 0u);  // rolling stubs record nothing
#endif
  stats.Reset();
  EXPECT_EQ(stats.Window().requests, 0u);
}

TEST(ServeStatsTest, SlowRingIsBoundedNewestFirst) {
  ServeStats stats(/*window_seconds=*/60.0, /*slow_capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    SlowRequest slow;
    slow.trace_id = "slow-" + std::to_string(i);
    slow.wall_seconds = 1.0 + i;
    stats.RecordSlow(std::move(slow));
  }
#ifndef BRIQ_NO_METRICS
  const std::vector<SlowRequest> slow = stats.Slow();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].trace_id, "slow-4");
  EXPECT_EQ(slow[1].trace_id, "slow-3");
#else
  EXPECT_TRUE(stats.Slow().empty());
#endif
}

// ---------------------------------------------------------------------------
// Live server

Router EchoRouter() {
  Router router;
  router.Handle("GET", "/ping", [](const HttpRequest&) {
    return HttpResponse::Text(200, "pong\n");
  });
  router.Handle("POST", "/echo", [](const HttpRequest& request) {
    return HttpResponse::Text(200, request.body);
  });
  return router;
}

TEST(HttpServerTest, ServesOverLoopback) {
  HttpServerOptions options;
  options.num_threads = 2;
  HttpServer server(EchoRouter(), options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  auto client = HttpClient::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto response = client->Request("GET", "/ping");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "pong\n");
  server.Stop();
}

TEST(HttpServerTest, KeepAliveReusesOneConnectionForManyRequests) {
  HttpServerOptions options;
  options.num_threads = 1;
  HttpServer server(EchoRouter(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = HttpClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 20; ++i) {
    const std::string body = "payload-" + std::to_string(i);
    auto response = client->Request("POST", "/echo", body);
    ASSERT_TRUE(response.ok()) << "request " << i << ": "
                               << response.status().ToString();
    EXPECT_EQ(response->status, 200);
    EXPECT_EQ(response->body, body);
  }
  EXPECT_GE(server.requests_served(), 20u);
  server.Stop();
}

TEST(HttpServerTest, ConcurrentKeepAliveClients) {
  HttpServerOptions options;
  options.num_threads = 4;
  HttpServer server(EchoRouter(), options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 25;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = HttpClient::Connect(server.port());
      if (!client.ok()) return;
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const std::string body =
            "c" + std::to_string(c) + "-r" + std::to_string(i);
        auto response = client->Request("POST", "/echo", body);
        if (response.ok() && response->status == 200 &&
            response->body == body) {
          ok_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kClients * kRequestsPerClient);
  EXPECT_GE(server.requests_served(),
            static_cast<size_t>(kClients * kRequestsPerClient));
  server.Stop();
}

TEST(HttpServerTest, PipelinedRequestsAnsweredInOrder) {
  HttpServerOptions options;
  options.num_threads = 1;
  HttpServer server(EchoRouter(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = HttpClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  // Three requests in one write; responses must come back in order.
  ASSERT_TRUE(client->SendRaw(
      "POST /echo HTTP/1.1\r\nContent-Length: 3\r\n\r\none"
      "POST /echo HTTP/1.1\r\nContent-Length: 3\r\n\r\ntwo"
      "GET /ping HTTP/1.1\r\n\r\n"));
  auto r1 = client->ReadResponse();
  auto r2 = client->ReadResponse();
  auto r3 = client->ReadResponse();
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_EQ(r1->body, "one");
  EXPECT_EQ(r2->body, "two");
  EXPECT_EQ(r3->body, "pong\n");
  server.Stop();
}

TEST(HttpServerTest, TornHeadersOverTheWire) {
  HttpServerOptions options;
  options.num_threads = 1;
  HttpServer server(EchoRouter(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = HttpClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  const std::string raw =
      "POST /echo HTTP/1.1\r\nContent-Length: 4\r\n\r\ntorn";
  for (char byte : raw) {
    ASSERT_TRUE(client->SendRaw(std::string(1, byte)));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "torn");
  server.Stop();
}

TEST(HttpServerTest, RoutingErrorsOverTheWire) {
  HttpServerOptions options;
  options.num_threads = 1;
  HttpServer server(EchoRouter(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = HttpClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto missing = client->Request("GET", "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  // Routing errors keep the connection alive; wrong method follows.
  auto wrong_method = client->Request("DELETE", "/ping");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);
  EXPECT_EQ(wrong_method->Header("allow"), "GET");
  server.Stop();
}

TEST(HttpServerTest, MalformedFramingGets400AndAClose) {
  HttpServerOptions options;
  options.num_threads = 1;
  HttpServer server(EchoRouter(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = HttpClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendRaw("THIS IS NOT HTTP\r\n\r\n"));
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 400);
  EXPECT_EQ(response->Header("connection"), "close");
  server.Stop();
}

TEST(HttpServerTest, MissingContentLengthGets411) {
  HttpServerOptions options;
  options.num_threads = 1;
  HttpServer server(EchoRouter(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = HttpClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendRaw("POST /echo HTTP/1.1\r\nHost: x\r\n\r\n"));
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 411);
  server.Stop();
}

TEST(HttpServerTest, OversizedBodyGets413) {
  HttpServerOptions options;
  options.num_threads = 1;
  options.limits.max_body_bytes = 64;
  HttpServer server(EchoRouter(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = HttpClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(
      client->SendRaw("POST /echo HTTP/1.1\r\nContent-Length: 100000\r\n\r\n"));
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 413);
  server.Stop();
}

// A handler that parks until released lets the test hold the single worker
// busy while filling the admission queue deterministically.
class Latch {
 public:
  void WaitUntilEntered() {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [&] { return entered_; });
  }
  void Block() {
    std::unique_lock<std::mutex> lock(mu_);
    entered_ = true;
    entered_cv_.notify_all();
    release_cv_.wait(lock, [&] { return released_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    release_cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable entered_cv_;
  std::condition_variable release_cv_;
  bool entered_ = false;
  bool released_ = false;
};

TEST(HttpServerTest, FullQueueShedsWith503RetryAfter) {
  Latch latch;
  Router router;
  router.Handle("GET", "/block", [&latch](const HttpRequest&) {
    latch.Block();
    return HttpResponse::Text(200, "released\n");
  });
  router.Handle("GET", "/ping", [](const HttpRequest&) {
    return HttpResponse::Text(200, "pong\n");
  });

  HttpServerOptions options;
  options.num_threads = 1;     // one worker,
  options.queue_capacity = 1;  // one buffered connection, then shed
  options.retry_after_seconds = 7;
  // Short idle timeout so the worker releases connection A quickly once
  // its client goes quiet and moves on to the queued connection B.
  options.idle_timeout_seconds = 0.3;
  HttpServer server(std::move(router), options);
  ASSERT_TRUE(server.Start().ok());

  // Connection A occupies the only worker inside the blocked handler.
  auto blocked = HttpClient::Connect(server.port());
  ASSERT_TRUE(blocked.ok());
  ASSERT_TRUE(blocked->SendRaw("GET /block HTTP/1.1\r\n\r\n"));
  latch.WaitUntilEntered();

  // Connection B fills the queue's single slot. The push is asynchronous
  // to Connect(), so poll the depth gauge until the acceptor lands it.
  auto queued = HttpClient::Connect(server.port());
  ASSERT_TRUE(queued.ok());
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (server.queue_depth() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(server.queue_depth(), 1u);

  // Connection C finds the queue full: immediate 503 from the acceptor.
  auto shed = HttpClient::Connect(server.port());
  ASSERT_TRUE(shed.ok());
  auto rejection = shed->ReadResponse();
  ASSERT_TRUE(rejection.ok()) << rejection.status().ToString();
  EXPECT_EQ(rejection->status, 503);
  EXPECT_EQ(rejection->Header("retry-after"), "7");
  EXPECT_GE(server.connections_rejected(), 1u);

  // Release the worker: A completes, then B gets served from the queue.
  latch.Release();
  auto released = blocked->ReadResponse();
  ASSERT_TRUE(released.ok());
  EXPECT_EQ(released->body, "released\n");
  blocked->Close();  // free the worker for the queued connection
  ASSERT_TRUE(queued->SendRaw("GET /ping HTTP/1.1\r\n\r\n"));
  auto pong = queued->ReadResponse();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->body, "pong\n");
  server.Stop();
}

TEST(HttpServerTest, StatuszServesSelfContainedHtml) {
  Router router = EchoRouter();
  StatuszInfo info;
  info.build_info = "http_server_test build";
  info.model_info = "(no model)";
  RegisterStatuszRoute(&router, info);

  HttpServerOptions options;
  options.num_threads = 1;
  HttpServer server(std::move(router), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = HttpClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  // Prime the rolling windows with one served request first.
  ASSERT_TRUE(client->Request("GET", "/ping").ok());
  auto response = client->Request("GET", "/statusz");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_NE(response->Header("content-type").find("text/html"),
            std::string::npos);
  EXPECT_NE(response->body.find("<html"), std::string::npos);
  EXPECT_NE(response->body.find("http_server_test build"), std::string::npos);
  // No fleet_rows callback -> no fleet section.
  EXPECT_EQ(response->body.find("<h2>fleet"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, StatuszRendersFleetSectionFromCallback) {
  Router router = EchoRouter();
  StatuszInfo info;
  info.build_info = "fleet driver under test";
  info.fleet_rows = [] {
    std::vector<FleetWorkerRow> rows;
    FleetWorkerRow running;
    running.worker_id = 0;
    running.state = "running";
    running.range = "[0, 3)";
    running.docs_total = 120;
    running.docs_per_sec = 41.5;
    running.last_heartbeat_age_seconds = 0.2;
    running.restarts = 1;
    rows.push_back(running);
    FleetWorkerRow silent;
    silent.worker_id = 1;
    silent.state = "running";
    silent.range = "[3, 6)";
    silent.docs_total = 0;
    silent.docs_per_sec = 0.0;
    silent.last_heartbeat_age_seconds = -1.0;  // never reported
    silent.restarts = 0;
    rows.push_back(silent);
    return rows;
  };
  RegisterStatuszRoute(&router, std::move(info));

  HttpServerOptions options;
  options.num_threads = 1;
  HttpServer server(std::move(router), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = HttpClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto response = client->Request("GET", "/statusz");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_NE(response->body.find("<h2>fleet (2 workers)</h2>"),
            std::string::npos);
  EXPECT_NE(response->body.find("[0, 3)"), std::string::npos);
  EXPECT_NE(response->body.find("120"), std::string::npos);
  EXPECT_NE(response->body.find("running"), std::string::npos);
  // A worker that never pushed a frame reads "never", not a bogus age.
  EXPECT_NE(response->body.find("never"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, EveryResponseCarriesTraceIdAndServerTiming) {
  HttpServerOptions options;
  options.num_threads = 1;
  HttpServer server(EchoRouter(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = HttpClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto echoed = client->Request("GET", "/ping", "",
                                {{"X-Briq-Trace-Id", "my-id-123"}});
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(echoed->Header("x-briq-trace-id"), "my-id-123");
  EXPECT_NE(echoed->Header("server-timing").find("app;dur="),
            std::string::npos);
  auto generated = client->Request("GET", "/ping");
  ASSERT_TRUE(generated.ok());
  EXPECT_EQ(generated->Header("x-briq-trace-id").size(), 16u);
  server.Stop();
}

TEST(HttpServerTest, StopIsIdempotentAndJoinsCleanly) {
  HttpServer server(EchoRouter(), HttpServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  {
    auto client = HttpClient::Connect(server.port());
    ASSERT_TRUE(client.ok());
    auto response = client->Request("GET", "/ping");
    ASSERT_TRUE(response.ok());
  }
  server.Stop();
  server.Stop();  // second call is a no-op
}

}  // namespace
}  // namespace briq::serve
