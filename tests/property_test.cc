// Randomized property sweeps across module boundaries: random tables,
// random quantity strings, and random graphs, checked against invariants
// rather than fixed expectations.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/extraction.h"
#include "core/gt_matching.h"
#include "corpus/generator.h"
#include "graph/random_walk.h"
#include "quantity/quantity_parser.h"
#include "table/virtual_cell.h"
#include "util/random.h"
#include "util/string_util.h"

namespace briq {
namespace {

// ---------------------------------------------------------------------------
// Random tables: virtual-cell invariants.
// ---------------------------------------------------------------------------

class RandomTableTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  table::Table MakeRandomTable(util::Rng* rng) {
    int rows = static_cast<int>(rng->UniformInt(2, 7));
    int cols = static_cast<int>(rng->UniformInt(2, 6));
    std::vector<std::vector<std::string>> grid(rows + 1);
    grid[0].push_back("Category");
    for (int c = 0; c < cols; ++c) {
      grid[0].push_back("col" + std::to_string(c));
    }
    for (int r = 0; r < rows; ++r) {
      grid[r + 1].push_back("row" + std::to_string(r));
      for (int c = 0; c < cols; ++c) {
        if (rng->Bernoulli(0.15)) {
          grid[r + 1].push_back("--");
        } else {
          grid[r + 1].push_back(util::FormatDouble(
              std::round(rng->UniformDouble(1, 5000)), 0));
        }
      }
    }
    table::Table t = table::Table::FromRows(std::move(grid));
    t.set_header_row(true);
    t.set_header_col(true);
    t.AnnotateQuantities();
    return t;
  }
};

TEST_P(RandomTableTest, VirtualCellValuesRecomputable) {
  util::Rng rng(GetParam());
  table::Table t = MakeRandomTable(&rng);
  auto mentions = table::GenerateTableMentions(t, 0, {});
  for (const auto& m : mentions) {
    std::vector<double> values;
    for (const auto& ref : m.cells) {
      ASSERT_TRUE(t.cell(ref).numeric());
      values.push_back(t.cell(ref).quantity->value);
    }
    double expected = table::EvaluateAggregate(
        m.func == table::AggregateFunction::kNone
            ? table::AggregateFunction::kNone
            : m.func,
        values);
    ASSERT_TRUE(std::isfinite(m.value));
    EXPECT_NEAR(m.value, expected, 1e-9 * std::max(1.0, std::fabs(expected)));
  }
}

TEST_P(RandomTableTest, PairCellsShareRowOrColumn) {
  util::Rng rng(GetParam() * 31 + 7);
  table::Table t = MakeRandomTable(&rng);
  for (const auto& m : table::GenerateTableMentions(t, 0, {})) {
    if (m.cells.size() != 2) continue;
    EXPECT_TRUE(m.cells[0].row == m.cells[1].row ||
                m.cells[0].col == m.cells[1].col)
        << m.DebugString();
  }
}

TEST_P(RandomTableTest, NoDuplicateTargets) {
  util::Rng rng(GetParam() * 17 + 3);
  table::Table t = MakeRandomTable(&rng);
  auto mentions = table::GenerateTableMentions(t, 0, {});
  for (size_t i = 0; i < mentions.size(); ++i) {
    for (size_t j = i + 1; j < mentions.size(); ++j) {
      EXPECT_FALSE(mentions[i].SameTarget(mentions[j]))
          << mentions[i].DebugString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTableTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Quantity round trips: formatted values re-extract to the same number.
// ---------------------------------------------------------------------------

class QuantityRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QuantityRoundTripTest, FormattedValuesReExtract) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    double v = std::round(rng.UniformDouble(1, 5e6));
    std::string surface =
        rng.Bernoulli(0.5)
            ? util::WithThousandsSeparators(static_cast<int64_t>(v))
            : util::FormatDouble(v, 0);
    std::string txt = "the figure reached " + surface + " overall";
    auto mentions = quantity::ExtractQuantities(txt);
    // Years are filtered by design; skip the collision band.
    if (v >= 1900 && v <= 2100) continue;
    ASSERT_EQ(mentions.size(), 1u) << txt;
    EXPECT_DOUBLE_EQ(mentions[0].value, v) << txt;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantityRoundTripTest,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Random graphs: RWR invariants.
// ---------------------------------------------------------------------------

class RandomGraphTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGraphTest, StationaryVectorIsDistribution) {
  util::Rng rng(GetParam());
  int n = static_cast<int>(rng.UniformInt(2, 40));
  graph::Graph g(n);
  int edges = static_cast<int>(rng.UniformInt(1, 3 * n));
  for (int e = 0; e < edges; ++e) {
    int u = static_cast<int>(rng.UniformInt(n));
    int v = static_cast<int>(rng.UniformInt(n));
    if (u != v && !g.HasEdge(u, v)) {
      g.AddEdge(u, v, rng.UniformDouble(0.01, 2.0));
    }
  }
  int source = static_cast<int>(rng.UniformInt(n));
  auto pi = graph::RandomWalkWithRestart(g, source);
  double total = std::accumulate(pi.begin(), pi.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  for (double p : pi) {
    EXPECT_GE(p, -1e-12);
    EXPECT_LE(p, 1.0 + 1e-12);
  }
  // Source always retains at least the restart mass.
  EXPECT_GE(pi[source], 0.15 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphTest,
                         ::testing::Values(101, 202, 303, 404, 505));

// ---------------------------------------------------------------------------
// Generated documents: extraction coverage property.
// ---------------------------------------------------------------------------

TEST(ExtractionCoverageProperty, GroundTruthMentionsAreExtracted) {
  corpus::CorpusOptions options;
  options.num_documents = 60;
  options.seed = 777;
  corpus::Corpus corpus = corpus::GenerateCorpus(options);
  core::BriqConfig config;

  size_t total = 0;
  size_t text_found = 0;
  size_t target_found = 0;
  for (const auto& doc : corpus.documents) {
    auto prepared = core::PrepareDocument(doc, config);
    for (const auto& m : core::MatchGroundTruth(prepared)) {
      ++total;
      if (m.text_idx >= 0) ++text_found;
      if (m.table_idx >= 0) ++target_found;
    }
  }
  ASSERT_GT(total, 100u);
  EXPECT_GT(static_cast<double>(text_found) / total, 0.97);
  EXPECT_GT(static_cast<double>(target_found) / total, 0.97);
}

TEST(RelativeDifferenceProperty, BoundsAndSymmetry) {
  util::Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    double a = rng.UniformDouble(-1e6, 1e6);
    double b = rng.UniformDouble(-1e6, 1e6);
    double d = quantity::RelativeDifference(a, b);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
    EXPECT_DOUBLE_EQ(d, quantity::RelativeDifference(b, a));
    EXPECT_DOUBLE_EQ(quantity::RelativeDifference(a, a), 0.0);
  }
}

}  // namespace
}  // namespace briq
