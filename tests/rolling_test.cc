// Rolling-window instruments: deterministic expiry/rotation via the
// injected-clock entry points, percentile math over windowed snapshots,
// laggard-clock drops, and windowed rates. Under -DBRIQ_NO_METRICS the
// stubs must stay inert (this suite runs in the no_metrics sub-build).

#include "obs/rolling.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace briq::obs {
namespace {

#ifndef BRIQ_NO_METRICS

// 4 sub-windows of 1 s each: a 4-second live window with second-granular
// epochs — small enough to reason through every rotation by hand.
RollingHistogram MakeSmall() {
  return RollingHistogram(ExponentialBuckets(1.0, 10.0, 3),
                          /*window_seconds=*/4.0, /*sub_windows=*/4);
}

TEST(RollingHistogramTest, RecordsAreVisibleInTheSameWindow) {
  RollingHistogram h = MakeSmall();
  h.RecordAt(0.5, 0.1);
  h.RecordAt(5.0, 1.2);
  h.RecordAt(50.0, 3.9);
  const HistogramSnapshot snap = h.SnapshotAt(3.9);
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 55.5);
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 0u);
}

TEST(RollingHistogramTest, OldSubWindowsAgeOutOfTheSnapshot) {
  RollingHistogram h = MakeSmall();
  h.RecordAt(1.0, 0.5);  // epoch 0
  h.RecordAt(1.0, 1.5);  // epoch 1
  // At t=3.9 the window covers epochs {0,1,2,3}: both visible.
  EXPECT_EQ(h.SnapshotAt(3.9).count, 2u);
  // At t=4.5 the window covers epochs {1,2,3,4}: epoch 0 expired.
  EXPECT_EQ(h.SnapshotAt(4.5).count, 1u);
  // At t=5.5 the window covers epochs {2,3,4,5}: everything expired.
  EXPECT_EQ(h.SnapshotAt(5.5).count, 0u);
}

TEST(RollingHistogramTest, SlotRecyclingZeroesTheEvictedSubWindow) {
  RollingHistogram h = MakeSmall();
  h.RecordAt(1.0, 0.5);  // epoch 0 lands in slot 0
  // Epoch 4 reuses slot 0 (4 % 4 == 0): the old counts must not bleed in.
  h.RecordAt(5.0, 4.5);
  const HistogramSnapshot snap = h.SnapshotAt(4.5);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.sum, 5.0);
}

TEST(RollingHistogramTest, IdleGapExpiresEverythingWithoutRecords) {
  RollingHistogram h = MakeSmall();
  for (int i = 0; i < 10; ++i) h.RecordAt(1.0, 0.1 * i);
  EXPECT_EQ(h.SnapshotAt(1.0).count, 10u);
  // A long idle gap: no record ever touched the intervening epochs, yet
  // the snapshot must not resurrect the stale slots.
  EXPECT_EQ(h.SnapshotAt(1000.0).count, 0u);
}

TEST(RollingHistogramTest, LaggardClockRecordsAreDroppedNotMisfiled) {
  RollingHistogram h = MakeSmall();
  h.RecordAt(1.0, 8.5);  // epoch 8 claims slot 0
  // A laggard thread still at t=4.5 (epoch 4, same slot) must not zero or
  // pollute epoch 8's live slot.
  h.RecordAt(100.0, 4.5);
  const HistogramSnapshot snap = h.SnapshotAt(8.9);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.sum, 1.0);
}

TEST(RollingHistogramTest, PercentilesOverTheLiveWindow) {
  RollingHistogram h(ExponentialBuckets(0.001, 10.0, 4),
                     /*window_seconds=*/60.0, /*sub_windows=*/12);
  // 90 fast (≤ 1 ms bucket) + 10 slow (≤ 1 s bucket), all inside the window.
  for (int i = 0; i < 90; ++i) h.RecordAt(0.0005, 1.0);
  for (int i = 0; i < 10; ++i) h.RecordAt(0.5, 30.0);
  const HistogramSnapshot snap = h.SnapshotAt(59.0);
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.50), 0.001);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.95), 1.0);
  // Once the slow cohort expires, the tail percentile collapses.
  const HistogramSnapshot later = h.SnapshotAt(61.5);
  EXPECT_EQ(later.count, 10u);
  EXPECT_DOUBLE_EQ(later.Percentile(0.99), 1.0);
}

TEST(RollingHistogramTest, WindowSecondsReportsTheConfiguredSpan) {
  EXPECT_DOUBLE_EQ(MakeSmall().window_seconds(), 4.0);
  RollingHistogram h(DefaultLatencyBuckets());
  EXPECT_DOUBLE_EQ(h.window_seconds(), 60.0);
}

TEST(RollingHistogramTest, ConcurrentRecordersAcrossRotations) {
  RollingHistogram h(ExponentialBuckets(1.0, 10.0, 3),
                     /*window_seconds=*/0.04, /*sub_windows=*/4);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      // Real clock: 10 ms sub-windows force many live rotations under
      // contention; the assertion is only "no crash, no torn state".
      for (int i = 0; i < kPerThread; ++i) h.Record(1.0);
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_LE(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(RollingCounterTest, CountsAndRatesOverTheWindow) {
  RollingCounter c(/*window_seconds=*/10.0, /*sub_windows=*/5);
  for (int i = 0; i < 40; ++i) c.AddAt(1, 0.25 * i);  // epochs 0..4
  EXPECT_EQ(c.CountAt(9.9), 40u);
  EXPECT_DOUBLE_EQ(c.RatePerSecondAt(9.9), 4.0);
  // Epoch 0's 8 events expire once the window slides past it.
  EXPECT_EQ(c.CountAt(10.5), 32u);
  EXPECT_EQ(c.CountAt(100.0), 0u);
}

TEST(RollingCounterTest, AddsAreCumulativeWithinASubWindow) {
  RollingCounter c(/*window_seconds=*/4.0, /*sub_windows=*/4);
  c.AddAt(3, 0.1);
  c.AddAt(7, 0.9);
  EXPECT_EQ(c.CountAt(0.9), 10u);
}

#else  // BRIQ_NO_METRICS

TEST(RollingStubsTest, CompileToInertNoOps) {
  RollingHistogram h(std::vector<double>{1.0}, 4.0, 4);
  h.Record(1.0);
  h.RecordAt(1.0, 0.0);
  EXPECT_EQ(h.Snapshot().count, 0u);
  EXPECT_EQ(h.SnapshotAt(100.0).count, 0u);
  EXPECT_DOUBLE_EQ(h.window_seconds(), 0.0);

  RollingCounter c(4.0, 4);
  c.Add();
  c.AddAt(5, 0.0);
  EXPECT_EQ(c.Count(), 0u);
  EXPECT_DOUBLE_EQ(c.RatePerSecondAt(1.0), 0.0);
}

#endif  // BRIQ_NO_METRICS

}  // namespace
}  // namespace briq::obs
