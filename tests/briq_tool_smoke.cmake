# CLI smoke test for briq_tool's corpus-to-shards pipeline, run by ctest
# (see tests/CMakeLists.txt). Exercises:
#   generate --compact  -> single-file corpus in compact JSON
#   stats <file>        -> the compact file parses
#   shard               -> legacy single-file corpus converted to shards
#   stats <dir>         -> the sharded corpus reads back with the same count
#   train / eval        -> out-of-core training to a model file, with eval
#                          against the persisted model byte-identical to
#                          eval that trains in-process (ISSUE 5)
# and failure paths (missing corpus / model, train without --model-out).
#
# Expects -DBRIQ_TOOL=<path to binary> and -DWORKDIR=<scratch dir>.

if(NOT BRIQ_TOOL OR NOT WORKDIR)
  message(FATAL_ERROR "briq_tool_smoke: BRIQ_TOOL and WORKDIR must be set")
endif()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

# Runs briq_tool with the given arguments; fails the test on a non-zero
# exit. The combined output is left in RUN_OUTPUT for content checks.
function(run_tool)
  execute_process(
    COMMAND "${BRIQ_TOOL}" ${ARGN}
    RESULT_VARIABLE rv
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR
      "briq_tool ${ARGN} exited with ${rv}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  set(RUN_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

# 1. Generate a small corpus in compact JSON.
run_tool(generate 12 "${WORKDIR}/corpus.json" 99 --compact)

# Compact means one line: header + the single JSON line.
file(STRINGS "${WORKDIR}/corpus.json" corpus_lines)
list(LENGTH corpus_lines n_lines)
if(NOT n_lines EQUAL 1)
  message(FATAL_ERROR
    "generate --compact wrote ${n_lines} lines, expected a single line")
endif()

# 2. The compact file must parse and report all 12 documents.
run_tool(stats "${WORKDIR}/corpus.json")
if(NOT RUN_OUTPUT MATCHES "documents" OR NOT RUN_OUTPUT MATCHES "12")
  message(FATAL_ERROR "stats on compact corpus looks wrong:\n${RUN_OUTPUT}")
endif()

# 3. Convert the legacy single-file corpus to shards of 5 documents.
run_tool(shard "${WORKDIR}/corpus.json" "${WORKDIR}/shards" 5)
foreach(idx 00000 00001 00002)
  if(NOT EXISTS "${WORKDIR}/shards/corpus-${idx}.jsonl")
    message(FATAL_ERROR "expected shard corpus-${idx}.jsonl was not written")
  endif()
endforeach()
if(EXISTS "${WORKDIR}/shards/corpus-00003.jsonl")
  message(FATAL_ERROR "too many shards for 12 documents at shard_size 5")
endif()

# 4. The sharded corpus must read back with the same document count.
run_tool(stats "${WORKDIR}/shards")
if(NOT RUN_OUTPUT MATCHES "documents" OR NOT RUN_OUTPUT MATCHES "12")
  message(FATAL_ERROR "stats on sharded corpus looks wrong:\n${RUN_OUTPUT}")
endif()

# 5. Failure path: sharding a missing corpus must fail loudly, not crash.
execute_process(
  COMMAND "${BRIQ_TOOL}" shard "${WORKDIR}/no-such-corpus.json"
          "${WORKDIR}/shards2"
  RESULT_VARIABLE rv
  OUTPUT_QUIET ERROR_QUIET)
if(rv EQUAL 0)
  message(FATAL_ERROR "shard of a missing corpus unexpectedly succeeded")
endif()

# 6. Failure path: malformed numeric arguments must print usage and exit
#    non-zero, not terminate on an uncaught std::stoul exception.
execute_process(
  COMMAND "${BRIQ_TOOL}" shard "${WORKDIR}/corpus.json" "${WORKDIR}/shards3"
          not-a-number
  RESULT_VARIABLE rv
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(rv EQUAL 0 OR NOT out MATCHES "usage:")
  message(FATAL_ERROR
          "non-numeric shard_size should fail with usage (exit ${rv}):\n${out}")
endif()

# 7. Streaming alignment over the shards with an observability snapshot:
#    the metrics JSON must exist and carry the per-stage latency
#    histograms plus streaming queue telemetry (ISSUE 3 acceptance).
run_tool(align "${WORKDIR}/shards" --stream --threads 2
         --metrics-out "${WORKDIR}/metrics.json")
if(NOT RUN_OUTPUT MATCHES "streamed 12 documents")
  message(FATAL_ERROR "align --stream did not report 12 docs:\n${RUN_OUTPUT}")
endif()
if(NOT EXISTS "${WORKDIR}/metrics.json")
  message(FATAL_ERROR "--metrics-out did not write metrics.json")
endif()
file(READ "${WORKDIR}/metrics.json" metrics_json)
foreach(instrument
        briq.align.prepare_seconds briq.align.filter_seconds
        briq.align.classify_seconds briq.align.resolve_seconds
        briq.filter.pairs_before briq.rwr.iterations
        briq.stream.queue_depth briq.shard.docs_read)
  if(NOT metrics_json MATCHES "${instrument}")
    message(FATAL_ERROR
      "metrics.json is missing instrument '${instrument}':\n${metrics_json}")
  endif()
endforeach()

# 8. --help goes to stdout, documents BRIQ_LOG_LEVEL, and exits zero.
run_tool(--help)
if(NOT RUN_OUTPUT MATCHES "BRIQ_LOG_LEVEL")
  message(FATAL_ERROR "--help does not document BRIQ_LOG_LEVEL:\n${RUN_OUTPUT}")
endif()

# 9. An unknown BRIQ_LOG_LEVEL must be rejected with the usage message.
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env BRIQ_LOG_LEVEL=bogus
          "${BRIQ_TOOL}" stats "${WORKDIR}/corpus.json"
  RESULT_VARIABLE rv
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(rv EQUAL 0 OR NOT out MATCHES "unknown BRIQ_LOG_LEVEL")
  message(FATAL_ERROR
          "BRIQ_LOG_LEVEL=bogus should fail with a message (exit ${rv}):\n${out}")
endif()

# 10. generate and shard honor --metrics-out (ISSUE 4 satellite): both
#     write a parseable observability snapshot.
run_tool(generate 6 "${WORKDIR}/corpus2.json" 5 --compact
         --metrics-out "${WORKDIR}/gen_metrics.json")
if(NOT EXISTS "${WORKDIR}/gen_metrics.json")
  message(FATAL_ERROR "generate --metrics-out wrote nothing")
endif()
run_tool(shard "${WORKDIR}/corpus2.json" "${WORKDIR}/shards4" 3
         --metrics-out "${WORKDIR}/shard_metrics.json")
file(READ "${WORKDIR}/shard_metrics.json" shard_metrics)
if(NOT shard_metrics MATCHES "briq.shard.docs_written")
  message(FATAL_ERROR
    "shard --metrics-out is missing briq.shard.docs_written:\n${shard_metrics}")
endif()

# 11. Continuous telemetry on a streaming run: the flusher must append at
#     least two complete JSONL records (baseline + final even on a tiny
#     corpus) and the trace exporter a loadable Chrome trace file.
run_tool(align "${WORKDIR}/shards" --stream --threads 2
         --metrics-interval 0.2 --metrics-flush-out "${WORKDIR}/flush.jsonl"
         --trace-out "${WORKDIR}/trace.json" --trace-sample 1.0)
file(STRINGS "${WORKDIR}/flush.jsonl" flush_lines)
list(LENGTH flush_lines n_flushes)
if(n_flushes LESS 2)
  message(FATAL_ERROR
    "flusher wrote ${n_flushes} JSONL record(s), expected at least 2")
endif()
list(GET flush_lines 0 first_flush)
list(GET flush_lines -1 last_flush)
if(NOT first_flush MATCHES "\"trigger\":\"start\"" OR
   NOT last_flush MATCHES "\"trigger\":\"final\"")
  message(FATAL_ERROR
    "flush.jsonl must open with a start record and close with a final one")
endif()
if(NOT last_flush MATCHES "\"cumulative\"" OR
   NOT last_flush MATCHES "\"ts_monotonic_sec\"")
  message(FATAL_ERROR "final flush record is missing fields:\n${last_flush}")
endif()
file(READ "${WORKDIR}/trace.json" trace_json)
if(NOT trace_json MATCHES "\"traceEvents\"" OR
   NOT trace_json MATCHES "\"ph\":\"X\"")
  message(FATAL_ERROR
    "trace.json is not Chrome trace-event JSON:\n${trace_json}")
endif()

# 12. --help documents the continuous-telemetry flags and the
#     train-once-serve-many flags.
run_tool(--help)
foreach(flag --metrics-interval --metrics-every-docs --metrics-flush-out
        --trace-out --serve-port --serve-linger
        --model --model-out --train-pct --spill-dir --max-samples)
  if(NOT RUN_OUTPUT MATCHES "${flag}")
    message(FATAL_ERROR "--help does not document ${flag}:\n${RUN_OUTPUT}")
  endif()
endforeach()

# 13. Out-of-core training (ISSUE 5 tentpole): train over the sharded
#     corpus, writing a model file plus a metrics snapshot that must carry
#     the briq.train.* instruments.
run_tool(train "${WORKDIR}/shards" --model-out "${WORKDIR}/model.bin"
         --threads 2 --metrics-out "${WORKDIR}/train_metrics.json")
if(NOT RUN_OUTPUT MATCHES "trained on 10 of 12 documents" OR
   NOT RUN_OUTPUT MATCHES "wrote model")
  message(FATAL_ERROR "train did not report its summary:\n${RUN_OUTPUT}")
endif()
if(NOT EXISTS "${WORKDIR}/model.bin")
  message(FATAL_ERROR "train --model-out did not write model.bin")
endif()
file(READ "${WORKDIR}/train_metrics.json" train_metrics)
foreach(instrument briq.train.documents briq.train.samples
        briq.train.fit_seconds)
  if(NOT train_metrics MATCHES "${instrument}")
    message(FATAL_ERROR
      "train metrics are missing instrument '${instrument}':\n${train_metrics}")
  endif()
endforeach()

# 14. Train-once-serve-many parity (ISSUE 5 acceptance): eval against the
#     persisted model must print byte-identical result tables to eval that
#     trains in-process (both train on the same leading-90% split).
run_tool(eval "${WORKDIR}/shards")
set(eval_in_process "${RUN_OUTPUT}")
run_tool(eval "${WORKDIR}/shards" --model "${WORKDIR}/model.bin")
if(NOT RUN_OUTPUT STREQUAL eval_in_process)
  message(FATAL_ERROR
    "eval --model differs from in-process eval:\n--- in-process ---\n"
    "${eval_in_process}\n--- from model ---\n${RUN_OUTPUT}")
endif()

# 15. Spill-to-disk training is bit-identical: same corpus trained with a
#     spill directory must write the same model bytes.
run_tool(train "${WORKDIR}/shards" --model-out "${WORKDIR}/model_spill.bin"
         --threads 2 --spill-dir "${WORKDIR}/spill")
if(NOT EXISTS "${WORKDIR}/spill/classifier.samples")
  message(FATAL_ERROR "--spill-dir did not leave spill files behind")
endif()
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files
          "${WORKDIR}/model.bin" "${WORKDIR}/model_spill.bin"
  RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR
    "spilled training produced different model bytes than in-memory")
endif()

# 16. Failure paths: aligning against a missing model and training without
#     --model-out must fail loudly, not crash.
execute_process(
  COMMAND "${BRIQ_TOOL}" align "${WORKDIR}/shards" --stream
          --model "${WORKDIR}/no-such-model.bin"
  RESULT_VARIABLE rv
  OUTPUT_QUIET ERROR_QUIET)
if(rv EQUAL 0)
  message(FATAL_ERROR "align --model with a missing file should fail")
endif()
execute_process(
  COMMAND "${BRIQ_TOOL}" train "${WORKDIR}/shards"
  RESULT_VARIABLE rv
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(rv EQUAL 0 OR NOT out MATCHES "--model-out")
  message(FATAL_ERROR
    "train without --model-out should fail mentioning the flag:\n${out}")
endif()

# 17. Strict flag parsing: every subcommand rejects unknown flags with a
#     named complaint and exit code 2 instead of silently ignoring them
#     (a typo like --metric-out must not discard telemetry).
foreach(cmd "stats;${WORKDIR}/corpus.json" "align;${WORKDIR}/shards;--stream"
        "serve;${WORKDIR}/shards" "fleet;align;${WORKDIR}/shards"
        "train;${WORKDIR}/shards;--model-out;${WORKDIR}/m2.bin")
  execute_process(
    COMMAND "${BRIQ_TOOL}" ${cmd} --bogus-flag
    RESULT_VARIABLE rv
    OUTPUT_VARIABLE out ERROR_VARIABLE out)
  if(NOT rv EQUAL 2 OR NOT out MATCHES "unknown flag '--bogus-flag'")
    message(FATAL_ERROR
      "briq_tool ${cmd} --bogus-flag should exit 2 naming the flag "
      "(exit ${rv}):\n${out}")
  endif()
endforeach()

# A value flag dangling at the end of the argv must also be a usage error.
execute_process(
  COMMAND "${BRIQ_TOOL}" align "${WORKDIR}/shards" --stream --metrics-out
  RESULT_VARIABLE rv
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rv EQUAL 2 OR NOT out MATCHES "requires a value")
  message(FATAL_ERROR
    "dangling --metrics-out should exit 2 (exit ${rv}):\n${out}")
endif()

