#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace briq::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::ParseError("inner"); };
  auto outer = [&]() -> Status {
    BRIQ_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kParseError);
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto succeeds = [] { return Status::OK(); };
  auto outer = [&]() -> Status {
    BRIQ_RETURN_IF_ERROR(succeeds());
    return Status::Internal("reached end");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("nope");
    return 5;
  };
  auto outer = [&](bool fail) -> Status {
    BRIQ_ASSIGN_OR_RETURN(int v, inner(fail));
    EXPECT_EQ(v, 5);
    return Status::OK();
  };
  EXPECT_TRUE(outer(false).ok());
  EXPECT_EQ(outer(true).code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace briq::util
