// Tests of the graph substrate and Random Walk with Restart.

#include <gtest/gtest.h>

#include <numeric>

#include "graph/graph.h"
#include "graph/random_walk.h"

namespace briq::graph {
namespace {

TEST(GraphTest, AddAndQueryEdges) {
  Graph g(3);
  g.AddEdge(0, 1, 0.5);
  g.AddEdge(1, 2, 1.5);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 0), 0.5);  // undirected
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 2), 0.0);
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(GraphTest, AddEdgeAccumulates) {
  Graph g(2);
  g.AddEdge(0, 1, 0.5);
  g.AddEdge(0, 1, 0.25);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 0), 0.75);
}

TEST(GraphTest, RemoveEdge) {
  Graph g(3);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 1.0);
  g.RemoveEdge(0, 1);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  g.RemoveEdge(0, 1);  // idempotent
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphTest, WeightedDegree) {
  Graph g(3);
  g.AddEdge(0, 1, 0.5);
  g.AddEdge(0, 2, 1.5);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 2.0);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(1), 0.5);
}

TEST(GraphTest, AddNode) {
  Graph g;
  EXPECT_EQ(g.AddNode(), 0);
  EXPECT_EQ(g.AddNode(), 1);
  EXPECT_EQ(g.num_nodes(), 2);
}

TEST(RwrTest, IsDistribution) {
  Graph g(4);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 1.0);
  g.AddEdge(2, 3, 1.0);
  auto pi = RandomWalkWithRestart(g, 0);
  double total = std::accumulate(pi.begin(), pi.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  for (double p : pi) EXPECT_GE(p, 0.0);
}

TEST(RwrTest, SourceHasHighestMassOnSymmetricGraph) {
  Graph g(3);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(0, 2, 1.0);
  g.AddEdge(1, 2, 1.0);
  auto pi = RandomWalkWithRestart(g, 0);
  EXPECT_GT(pi[0], pi[1]);
  EXPECT_GT(pi[0], pi[2]);
  EXPECT_NEAR(pi[1], pi[2], 1e-9);  // symmetry
}

TEST(RwrTest, TwoNodeAnalyticSolution) {
  // Two nodes, one edge: pi0 = c + (1-c) pi1, pi1 = (1-c) pi0, hence
  // pi0 = 1/(2-c) and pi1 = (1-c)/(2-c). c = 0.2: 0.5556 / 0.4444.
  Graph g(2);
  g.AddEdge(0, 1, 1.0);
  RwrConfig config;
  config.restart_prob = 0.2;
  auto pi = RandomWalkWithRestart(g, 0, config);
  EXPECT_NEAR(pi[0], 1.0 / 1.8, 1e-6);
  EXPECT_NEAR(pi[1], 0.8 / 1.8, 1e-6);
}

TEST(RwrTest, ProximityBeatsDistance) {
  // Chain 0-1-2-3-4: mass decays with distance from the source.
  Graph g(5);
  for (int i = 0; i + 1 < 5; ++i) g.AddEdge(i, i + 1, 1.0);
  auto pi = RandomWalkWithRestart(g, 0);
  EXPECT_GT(pi[1], pi[2]);
  EXPECT_GT(pi[2], pi[3]);
  EXPECT_GT(pi[3], pi[4]);
}

TEST(RwrTest, EdgeWeightsSteerTheWalk) {
  // From 0, a heavy edge to 1 and a light edge to 2.
  Graph g(3);
  g.AddEdge(0, 1, 10.0);
  g.AddEdge(0, 2, 1.0);
  auto pi = RandomWalkWithRestart(g, 0);
  EXPECT_GT(pi[1], pi[2]);
}

TEST(RwrTest, DisconnectedComponentGetsNoMass) {
  Graph g(4);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(2, 3, 1.0);
  auto pi = RandomWalkWithRestart(g, 0);
  EXPECT_NEAR(pi[2], 0.0, 1e-12);
  EXPECT_NEAR(pi[3], 0.0, 1e-12);
}

TEST(RwrTest, IsolatedSourceKeepsAllMass) {
  Graph g(3);
  g.AddEdge(1, 2, 1.0);
  auto pi = RandomWalkWithRestart(g, 0);
  EXPECT_NEAR(pi[0], 1.0, 1e-9);
}

TEST(RwrTest, RestartProbOneConcentratesAtSource) {
  Graph g(2);
  g.AddEdge(0, 1, 1.0);
  RwrConfig config;
  config.restart_prob = 1.0;
  auto pi = RandomWalkWithRestart(g, 0, config);
  EXPECT_NEAR(pi[0], 1.0, 1e-9);
}

TEST(RwrTest, ConvergesAndReportsIterations) {
  Graph g(10);
  for (int i = 0; i + 1 < 10; ++i) g.AddEdge(i, i + 1, 1.0);
  int iterations = 0;
  RandomWalkWithRestart(g, 0, {}, &iterations);
  EXPECT_GT(iterations, 1);
  EXPECT_LT(iterations, 200);
}

TEST(RwrTest, EdgeDeletionChangesDistribution) {
  // The resolution algorithm relies on deletions steering later walks.
  Graph g(4);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(0, 2, 1.0);
  g.AddEdge(1, 3, 1.0);
  g.AddEdge(2, 3, 1.0);
  auto before = RandomWalkWithRestart(g, 0);
  g.RemoveEdge(0, 2);
  auto after = RandomWalkWithRestart(g, 0);
  EXPECT_GT(after[1], before[1]);
  EXPECT_LT(after[2], before[2]);
}

}  // namespace
}  // namespace briq::graph
