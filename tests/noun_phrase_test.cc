#include "text/noun_phrase.h"

#include <gtest/gtest.h>

#include "text/stopwords.h"

namespace briq::text {
namespace {

TEST(StopwordsTest, CommonWords) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("The"));
  EXPECT_TRUE(IsStopword("of"));
  EXPECT_TRUE(IsStopword("was"));
  EXPECT_FALSE(IsStopword("revenue"));
  EXPECT_FALSE(IsStopword("segment"));
}

TEST(StopwordsTest, PhraseBreakers) {
  EXPECT_TRUE(IsPhraseBreaker("increased"));
  EXPECT_TRUE(IsPhraseBreaker("reported"));
  EXPECT_FALSE(IsPhraseBreaker("profit"));
}

TEST(NounPhraseTest, ExtractsContentRuns) {
  auto phrases = NounPhraseStrings("The segment profit was up");
  ASSERT_EQ(phrases.size(), 1u);
  EXPECT_EQ(phrases[0], "segment profit");
}

TEST(NounPhraseTest, StopwordsSplitPhrases) {
  auto phrases =
      NounPhraseStrings("Total revenue of the previous year");
  // "of" and "the" split; "previous year" forms its own phrase.
  ASSERT_EQ(phrases.size(), 2u);
  EXPECT_EQ(phrases[0], "total revenue");
  EXPECT_EQ(phrases[1], "previous year");
}

TEST(NounPhraseTest, NumbersDoNotJoinPhrases) {
  auto phrases = NounPhraseStrings("reported by 38 patients");
  ASSERT_EQ(phrases.size(), 1u);
  EXPECT_EQ(phrases[0], "patients");
}

TEST(NounPhraseTest, SpansPointIntoSource) {
  std::string s = "Gross income and Income taxes";
  auto phrases = ExtractNounPhrases(s);
  ASSERT_EQ(phrases.size(), 2u);
  EXPECT_EQ(s.substr(phrases[0].span.begin, phrases[0].span.length()),
            "Gross income");
  EXPECT_EQ(s.substr(phrases[1].span.begin, phrases[1].span.length()),
            "Income taxes");
}

TEST(NounPhraseTest, EmptyInput) {
  EXPECT_TRUE(ExtractNounPhrases("").empty());
  EXPECT_TRUE(ExtractNounPhrases("the of was").empty());
}

}  // namespace
}  // namespace briq::text
