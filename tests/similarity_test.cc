#include "util/similarity.h"

#include <gtest/gtest.h>

namespace briq::util {
namespace {

TEST(JaroTest, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
}

TEST(JaroTest, DisjointIsZero) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", "abc"), 0.0);
}

TEST(JaroTest, KnownValue) {
  // Classic reference pair: JARO("MARTHA", "MARHTA") = 0.944...
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.9444, 1e-3);
}

TEST(JaroWinklerTest, PrefixBoost) {
  // Jaro-Winkler favours shared prefixes (the paper's rationale: "26.7$"
  // should be closer to "26.65$" than to "29.75$").
  double close = JaroWinklerSimilarity("26.7$", "26.65$");
  double far = JaroWinklerSimilarity("26.7$", "29.75$");
  EXPECT_GT(close, far);
}

TEST(JaroWinklerTest, KnownValue) {
  EXPECT_NEAR(JaroWinklerSimilarity("MARTHA", "MARHTA"), 0.9611, 1e-3);
}

// Property sweep: symmetry and bounds over assorted string pairs.
class SimilarityPropertyTest
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(SimilarityPropertyTest, SymmetricAndBounded) {
  auto [a, b] = GetParam();
  double ab = JaroWinklerSimilarity(a, b);
  double ba = JaroWinklerSimilarity(b, a);
  EXPECT_DOUBLE_EQ(ab, ba);
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0);
  EXPECT_GE(JaroSimilarity(a, b), 0.0);
  EXPECT_LE(JaroSimilarity(a, b), 1.0);
  // Winkler boost never decreases Jaro.
  EXPECT_GE(ab + 1e-12, JaroSimilarity(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, SimilarityPropertyTest,
    ::testing::Values(std::make_pair("36900", "37K"),
                      std::make_pair("1,144,716", "1144716"),
                      std::make_pair("0.9", "890"),
                      std::make_pair("total", "totals"),
                      std::make_pair("a", "a"),
                      std::make_pair("", "x"),
                      std::make_pair("12.7%", "13.3%"),
                      std::make_pair("3,263", "3.26 billion")));

TEST(JaccardTest, Basics) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"a", "b"}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {"b"}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  // Duplicates collapse to set semantics.
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "a", "b"}, {"a", "b", "b"}), 1.0);
}

TEST(OverlapCoefficientTest, Basics) {
  EXPECT_DOUBLE_EQ(OverlapCoefficient({"a", "b", "c"}, {"a", "b"}), 1.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({"a"}, {"b"}), 0.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({}, {"a"}), 0.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({"a", "x"}, {"a", "y"}), 0.5);
}

TEST(WeightedOverlapTest, MatchesUnweightedWhenUniform) {
  WeightedBag a = {{"x", 1.0}, {"y", 1.0}};
  WeightedBag b = {{"y", 1.0}, {"z", 1.0}};
  EXPECT_DOUBLE_EQ(WeightedOverlapCoefficient(a, b), 0.5);
}

TEST(WeightedOverlapTest, UsesMinWeights) {
  WeightedBag a = {{"x", 1.0}};
  WeightedBag b = {{"x", 0.2}, {"y", 0.8}};
  // Shared mass = min(1.0, 0.2) = 0.2; denominator = min(1.0, 1.0) = 1.0.
  EXPECT_DOUBLE_EQ(WeightedOverlapCoefficient(a, b), 0.2);
}

TEST(WeightedOverlapTest, EmptyBagsYieldZero) {
  WeightedBag a;
  WeightedBag b = {{"x", 1.0}};
  EXPECT_DOUBLE_EQ(WeightedOverlapCoefficient(a, b), 0.0);
  EXPECT_DOUBLE_EQ(WeightedOverlapCoefficient(b, a), 0.0);
}

}  // namespace
}  // namespace briq::util
