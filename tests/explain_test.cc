#include "core/explain.h"

#include <gtest/gtest.h>

#include "core/gt_matching.h"
#include "corpus/paper_examples.h"

namespace briq::core {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest()
      : doc_(corpus::Figure1aHealth()),
        prepared_(PrepareDocument(doc_, config_)) {
    // A synthetic "gold" alignment (no trained model needed here).
    for (const auto& m : MatchGroundTruth(prepared_)) {
      if (m.text_idx >= 0 && m.table_idx >= 0) {
        alignment_.decisions.push_back({m.text_idx, m.table_idx, 0.9});
      }
    }
  }

  corpus::Document doc_;
  BriqConfig config_;
  PreparedDocument prepared_;
  DocumentAlignment alignment_;
};

TEST_F(ExplainTest, ExplanationNamesMentionTargetAndHeaders) {
  ASSERT_FALSE(alignment_.decisions.empty());
  // Find the "38" -> Depression/total decision.
  for (const auto& d : alignment_.decisions) {
    if (prepared_.text_mentions[d.text_idx].surface() != "38") continue;
    std::string ex = ExplainDecision(prepared_, config_, d);
    EXPECT_NE(ex.find("\"38\""), std::string::npos);
    EXPECT_NE(ex.find("Depression"), std::string::npos);
    EXPECT_NE(ex.find("total"), std::string::npos);
    EXPECT_NE(ex.find("f1_surface_sim"), std::string::npos);
    return;
  }
  FAIL() << "no decision for mention '38'";
}

TEST_F(ExplainTest, AggregateExplanationNamesFunction) {
  for (const auto& d : alignment_.decisions) {
    if (prepared_.text_mentions[d.text_idx].surface() != "123") continue;
    std::string ex = ExplainDecision(prepared_, config_, d);
    EXPECT_NE(ex.find("sum over 5 cell(s)"), std::string::npos) << ex;
    return;
  }
  FAIL() << "no decision for mention '123'";
}

TEST_F(ExplainTest, HintsClassifySentences) {
  std::vector<SentenceHint> hints =
      SummarizationHints(prepared_, alignment_);
  ASSERT_GE(hints.size(), 2u);

  // Sentence 0: "A total of 123 ... 69 female ... 54 male" — three sums.
  EXPECT_EQ(hints[0].aggregate_references, 3u);
  EXPECT_TRUE(hints[0].PreferForSummary());

  // Sentence 1: "... depression, reported by 38 ... 5 patients." —
  // individual cells only.
  EXPECT_EQ(hints[1].aggregate_references, 0u);
  EXPECT_EQ(hints[1].single_cell_references, 2u);
  EXPECT_FALSE(hints[1].PreferForSummary());
}

TEST_F(ExplainTest, UnalignedMentionsCounted) {
  DocumentAlignment empty;
  std::vector<SentenceHint> hints = SummarizationHints(prepared_, empty);
  size_t unaligned = 0;
  for (const auto& h : hints) unaligned += h.unaligned_mentions;
  EXPECT_EQ(unaligned, prepared_.text_mentions.size());
  for (const auto& h : hints) EXPECT_FALSE(h.PreferForSummary());
}

}  // namespace
}  // namespace briq::core
