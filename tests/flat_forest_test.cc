// FlatForest compile round trip: the struct-of-arrays inference layout
// must reproduce RandomForest probabilities bit-for-bit — exact double
// equality, not near-equality — for every entry point (scalar, buffered,
// batch, strided batch), across randomly fitted forests of varying depth,
// class count, and feature count, plus the degenerate shapes (single-node
// trees, classes a bootstrap can miss, unfitted forests).

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "ml/dataset.h"
#include "ml/flat_forest.h"
#include "ml/random_forest.h"
#include "util/random.h"

namespace briq::ml {
namespace {

// Random dataset: `num_features` uniform features in [-10, 10); labels
// drawn uniformly from [0, num_classes). Deliberately noisy — the trees
// fit noise into deep, irregular shapes, which is exactly what stresses
// the breadth-first relayout.
Dataset RandomDataset(int num_features, int num_classes, size_t num_rows,
                      util::Rng* rng) {
  Dataset d(num_features);
  std::vector<double> x(static_cast<size_t>(num_features));
  for (size_t i = 0; i < num_rows; ++i) {
    for (double& v : x) v = rng->UniformDouble(-10.0, 10.0);
    d.Add(x, static_cast<int>(rng->UniformInt(num_classes)),
          /*weight=*/1.0 + rng->UniformDouble());
  }
  return d;
}

// Probe rows include exact split thresholds (feature values seen in
// training reappear here because both draw from the same coarse grid when
// `grid` is set), so ties at `x <= threshold` boundaries are exercised.
std::vector<double> RandomRow(int num_features, util::Rng* rng, bool grid) {
  std::vector<double> x(static_cast<size_t>(num_features));
  for (double& v : x) {
    v = grid ? static_cast<double>(rng->UniformInt(-10, 10))
             : rng->UniformDouble(-10.0, 10.0);
  }
  return x;
}

void ExpectBitIdentical(const RandomForest& forest, const FlatForest& flat,
                        const std::vector<std::vector<double>>& rows,
                        const std::string& context) {
  ASSERT_TRUE(flat.compiled()) << context;
  ASSERT_EQ(flat.num_classes(), forest.num_classes()) << context;
  ASSERT_EQ(flat.num_features(), forest.num_features()) << context;
  ASSERT_EQ(flat.num_trees(), forest.num_trees()) << context;
  const size_t nc = static_cast<size_t>(forest.num_classes());

  for (size_t i = 0; i < rows.size(); ++i) {
    const std::string ctx = context + " row " + std::to_string(i);
    std::vector<double> expected = forest.PredictProba(rows[i]);
    std::vector<double> got(nc, -1.0);
    flat.PredictProba(rows[i].data(), got.data());
    ASSERT_EQ(expected.size(), got.size()) << ctx;
    for (size_t c = 0; c < nc; ++c) {
      // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the contract is bit-identity.
      EXPECT_EQ(expected[c], got[c]) << ctx << " class " << c;
    }
    EXPECT_EQ(forest.PredictPositiveProba(rows[i]),
              flat.PredictPositiveProba(rows[i].data()))
        << ctx;
  }

  // Batch entry points, with both a tight and a padded stride. The row
  // count intentionally straddles tile boundaries (not a multiple of
  // kTileRows) so the tail tile is covered.
  const size_t nf = static_cast<size_t>(forest.num_features());
  for (size_t stride : {nf, nf + 3}) {
    const std::string ctx = context + " stride " + std::to_string(stride);
    std::vector<double> matrix(rows.size() * stride, -7.0);
    for (size_t i = 0; i < rows.size(); ++i) {
      for (size_t f = 0; f < nf; ++f) matrix[i * stride + f] = rows[i][f];
    }
    std::vector<double> proba(rows.size() * nc, -1.0);
    flat.PredictProbaBatch(matrix.data(), rows.size(), stride, proba.data());
    std::vector<double> positive(rows.size(), -1.0);
    flat.PredictPositiveProbaBatch(matrix.data(), rows.size(), stride,
                                   positive.data());
    for (size_t i = 0; i < rows.size(); ++i) {
      std::vector<double> expected = forest.PredictProba(rows[i]);
      for (size_t c = 0; c < nc; ++c) {
        EXPECT_EQ(expected[c], proba[i * nc + c])
            << ctx << " row " << i << " class " << c;
      }
      EXPECT_EQ(forest.PredictPositiveProba(rows[i]), positive[i])
          << ctx << " row " << i;
    }
  }
}

TEST(FlatForestTest, FuzzRoundTripAcrossShapes) {
  util::Rng rng(20260809);
  // (features, classes, depth, trees) sweeps: binary and multiclass,
  // stumps through deep trees, single-tree through mid-size ensembles.
  struct Shape {
    int num_features;
    int num_classes;
    int max_depth;
    int num_trees;
  };
  const Shape shapes[] = {
      {1, 2, 1, 1},   {2, 2, 3, 5},    {5, 2, 16, 20}, {3, 3, 4, 7},
      {8, 5, 10, 12}, {12, 4, 16, 30}, {4, 2, 2, 40},  {6, 7, 6, 9},
  };
  for (const Shape& s : shapes) {
    for (int rep = 0; rep < 3; ++rep) {
      Dataset data = RandomDataset(s.num_features, s.num_classes,
                                   /*num_rows=*/120, &rng);
      ForestConfig config;
      config.num_trees = s.num_trees;
      config.tree.max_depth = s.max_depth;
      config.seed = 1000 * rep + s.num_trees;
      RandomForest forest;
      forest.Fit(data, config);

      FlatForest flat;
      flat.Compile(forest);

      std::vector<std::vector<double>> probes;
      for (int i = 0; i < 40; ++i) {
        probes.push_back(RandomRow(s.num_features, &rng, /*grid=*/i % 2 == 0));
      }
      ExpectBitIdentical(forest, flat, probes,
                         "features=" + std::to_string(s.num_features) +
                             " classes=" + std::to_string(s.num_classes) +
                             " depth=" + std::to_string(s.max_depth) +
                             " trees=" + std::to_string(s.num_trees) +
                             " rep=" + std::to_string(rep));
    }
  }
}

TEST(FlatForestTest, SingleNodeTreesArePureLeaves) {
  // A one-class dataset collapses every tree to a single leaf; the flat
  // layout must handle root-is-leaf blocks.
  util::Rng rng(7);
  Dataset d(3);
  std::vector<double> x(3);
  for (int i = 0; i < 50; ++i) {
    for (double& v : x) v = rng.UniformDouble(-1.0, 1.0);
    d.Add(x, 0);
  }
  ForestConfig config;
  config.num_trees = 5;
  RandomForest forest;
  forest.Fit(d, config);

  FlatForest flat;
  flat.Compile(forest);
  // Every tree is one node and all leaves dedup to a single distribution
  // row.
  EXPECT_EQ(flat.num_nodes(), 5u);
  EXPECT_EQ(flat.num_leaf_rows(), 1u);

  std::vector<std::vector<double>> probes;
  for (int i = 0; i < 10; ++i) probes.push_back(RandomRow(3, &rng, false));
  ExpectBitIdentical(forest, flat, probes, "single-node");
}

TEST(FlatForestTest, RareClassMissedByBootstrapsZeroPadsExactly) {
  // One sample of class 2 among many of classes 0/1: most bootstrap
  // samples miss it, so those trees emit leaf distributions shorter than
  // num_classes. The flat table zero-pads them; padding adds exactly 0.0
  // and must not perturb any probability.
  util::Rng rng(99);
  Dataset d(2);
  std::vector<double> x(2);
  for (int i = 0; i < 80; ++i) {
    for (double& v : x) v = rng.UniformDouble(-5.0, 5.0);
    d.Add(x, i % 2);
  }
  d.Add({0.25, -0.75}, 2);
  ForestConfig config;
  config.num_trees = 25;
  config.balance_classes = false;  // keep the class genuinely rare
  RandomForest forest;
  forest.Fit(d, config);
  ASSERT_EQ(forest.num_classes(), 3);

  FlatForest flat;
  flat.Compile(forest);
  std::vector<std::vector<double>> probes;
  for (int i = 0; i < 30; ++i) probes.push_back(RandomRow(2, &rng, i % 2 == 0));
  probes.push_back({0.25, -0.75});
  ExpectBitIdentical(forest, flat, probes, "rare-class");
}

TEST(FlatForestTest, UnfittedForestCompilesToEmpty) {
  RandomForest forest;
  FlatForest flat;
  flat.Compile(forest);
  EXPECT_FALSE(flat.compiled());
  EXPECT_EQ(flat.num_nodes(), 0u);
  EXPECT_EQ(flat.num_leaf_rows(), 0u);

  // Recompiling an empty layout from a fitted forest, then from an
  // unfitted one again, must fully clear state both ways.
  util::Rng rng(3);
  Dataset d = RandomDataset(2, 2, 40, &rng);
  RandomForest fitted;
  fitted.Fit(d, {});
  flat.Compile(fitted);
  EXPECT_TRUE(flat.compiled());
  flat.Compile(forest);
  EXPECT_FALSE(flat.compiled());
  EXPECT_EQ(flat.num_nodes(), 0u);
}

TEST(FlatForestTest, LeafDeduplicationShrinksTable) {
  // Pure-leaf forests over a two-label dataset separable by one split:
  // many leaves, few distinct distributions. The dedup table must be
  // strictly smaller than the leaf count while round-tripping exactly.
  util::Rng rng(41);
  Dataset d(1);
  for (int i = 0; i < 60; ++i) {
    double v = rng.UniformDouble(-1.0, 1.0);
    d.Add({v}, v < 0.0 ? 0 : 1);
  }
  ForestConfig config;
  config.num_trees = 15;
  RandomForest forest;
  forest.Fit(d, config);

  FlatForest flat;
  flat.Compile(forest);
  // Every binary tree with k internal nodes has k + 1 leaves, so across
  // the forest: leaves = (nodes + trees) / 2.
  const size_t leaves = (flat.num_nodes() + flat.num_trees()) / 2;
  EXPECT_LT(flat.num_leaf_rows(), leaves);

  std::vector<std::vector<double>> probes;
  for (int i = 0; i < 20; ++i) probes.push_back(RandomRow(1, &rng, false));
  ExpectBitIdentical(forest, flat, probes, "dedup");
}

}  // namespace
}  // namespace briq::ml
