#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace briq::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(uint64_t{17}), 17u);
  }
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(int64_t{-5}, int64_t{5});
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(uint64_t{8}));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Discrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ChoicePicksExistingElement) {
  Rng rng(31);
  std::vector<int> v = {10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    int c = rng.Choice(v);
    EXPECT_TRUE(c == 10 || c == 20 || c == 30);
  }
}

}  // namespace
}  // namespace briq::util
