// Consistency tests of the hand-built paper-example documents: spans,
// target existence, and the numeric relationships the paper states.

#include "corpus/paper_examples.h"

#include <gtest/gtest.h>

#include <cmath>

#include "table/virtual_cell.h"

namespace briq::corpus {
namespace {

using table::AggregateFunction;

class PaperExampleTest : public ::testing::TestWithParam<int> {
 protected:
  Document doc() const { return AllPaperExamples()[GetParam()]; }
};

TEST_P(PaperExampleTest, SpansMatchSurfaces) {
  Document d = doc();
  for (const GroundTruthAlignment& gt : d.ground_truth) {
    ASSERT_LT(static_cast<size_t>(gt.paragraph), d.paragraphs.size());
    const std::string& para = d.paragraphs[gt.paragraph];
    ASSERT_LE(gt.span.end, para.size()) << d.id;
    EXPECT_EQ(para.substr(gt.span.begin, gt.span.length()), gt.surface)
        << d.id;
  }
}

TEST_P(PaperExampleTest, TargetsReferenceNumericCells) {
  Document d = doc();
  for (const GroundTruthAlignment& gt : d.ground_truth) {
    ASSERT_LT(static_cast<size_t>(gt.target.table_index), d.tables.size());
    const table::Table& t = d.tables[gt.target.table_index];
    for (const table::CellRef& ref : gt.target.cells) {
      ASSERT_GE(ref.row, 0);
      ASSERT_LT(ref.row, t.num_rows()) << d.id << " '" << gt.surface << "'";
      ASSERT_LT(ref.col, t.num_cols()) << d.id;
      EXPECT_TRUE(t.cell(ref).numeric())
          << d.id << " '" << gt.surface << "' cell(" << ref.row << ","
          << ref.col << ")='" << t.cell(ref).raw << "'";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllExamples, PaperExampleTest,
                         ::testing::Range(0, 10));

TEST(PaperExamplesTest, Figure1aSumIs123) {
  Document d = Figure1aHealth();
  const table::Table& t = d.tables[0];
  double sum = 0;
  for (int r = 1; r <= 5; ++r) sum += t.cell(r, 3).quantity->value;
  EXPECT_DOUBLE_EQ(sum, 123);
}

TEST(PaperExamplesTest, Figure1cScaleAndRatio) {
  Document d = Figure1cFinance();
  const table::Table& t = d.tables[0];
  // "(in Mio)" caption: 3,263 -> 3.263e9.
  EXPECT_DOUBLE_EQ(t.cell(1, 1).quantity->value, 3.263e9);
  // European decimal comma 0,877 -> 877,000 after scaling.
  EXPECT_DOUBLE_EQ(t.cell(2, 3).quantity->value, 0.877e6);
  // "increased by 1.5%": ratio(890, 876) ~ 1.6%.
  double ratio = table::EvaluateAggregate(
      AggregateFunction::kChangeRatio,
      {t.cell(4, 1).quantity->value, t.cell(4, 2).quantity->value});
  EXPECT_NEAR(ratio, 1.5982, 1e-3);
}

TEST(PaperExamplesTest, Figure3PercentCellsNotRescaled) {
  Document d = Figure3CoupledQuantities();
  const table::Table& t = d.tables[0];
  EXPECT_DOUBLE_EQ(t.cell(1, 1).quantity->value, 900e6);   // $ Millions
  EXPECT_DOUBLE_EQ(t.cell(1, 3).quantity->value, 5);       // percent cell
  EXPECT_DOUBLE_EQ(t.cell(3, 3).quantity->value, 0.6);     // 60 bps
  EXPECT_EQ(t.cell(3, 3).quantity->unit, "percent");
}

TEST(PaperExamplesTest, Figure3AmbiguityIsReal) {
  Document d = Figure3CoupledQuantities();
  // "11%" exists in both tables; "60 bps" only in Table 1.
  auto value_at = [&](int tbl, int r, int c) {
    return d.tables[tbl].cell(r, c).quantity->value;
  };
  EXPECT_DOUBLE_EQ(value_at(0, 2, 3), value_at(1, 2, 3));  // 11% both
  EXPECT_DOUBLE_EQ(value_at(0, 3, 2), value_at(1, 3, 1));  // 13.3% both
}

TEST(PaperExamplesTest, Figure5aRatioMatchesSurface) {
  Document d = Figure5aCarSales();
  const table::Table& t = d.tables[0];
  double ratio = table::EvaluateAggregate(
      AggregateFunction::kChangeRatio,
      {t.cell(1, 2).quantity->value, t.cell(1, 1).quantity->value});
  EXPECT_NEAR(ratio, 33.65, 0.01);
}

TEST(PaperExamplesTest, Figure5cNegativeEarnings) {
  Document d = Figure5cEarnings();
  const table::Table& t = d.tables[0];
  EXPECT_DOUBLE_EQ(t.cell(2, 4).quantity->value, -9.49e6);
  double diff = table::EvaluateAggregate(
      AggregateFunction::kDiff,
      {t.cell(2, 3).quantity->value, t.cell(2, 4).quantity->value});
  EXPECT_NEAR(diff, 16.35e6, 1e3);
}

TEST(PaperExamplesTest, Figure6aCollision) {
  Document d = Figure6aBedrooms();
  const table::Table& t = d.tables[0];
  // "3.2" appears twice in the same row — the collision BriQ can trip on.
  EXPECT_DOUBLE_EQ(t.cell(5, 1).quantity->value,
                   t.cell(5, 3).quantity->value);
}

TEST(PaperExamplesTest, Figure6cScaleGap) {
  Document d = Figure6cMutualFunds();
  const table::Table& t = d.tables[0];
  // The table holds 5.82 (bare), while the text says "$5.82 billion":
  // normalized values differ by 9 orders of magnitude.
  EXPECT_DOUBLE_EQ(t.cell(2, 1).quantity->value, 5.82);
}

TEST(PaperExamplesTest, AllExamplesCount) {
  EXPECT_EQ(AllPaperExamples().size(), 10u);
}

}  // namespace
}  // namespace briq::corpus
