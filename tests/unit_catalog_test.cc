#include "quantity/unit.h"

#include <gtest/gtest.h>

#include "quantity/header_cue.h"

namespace briq::quantity {
namespace {

TEST(UnitLookupTest, CurrencySymbolsAndWords) {
  EXPECT_EQ(LookupUnit("$")->canonical, "USD");
  EXPECT_EQ(LookupUnit("dollars")->canonical, "USD");
  EXPECT_EQ(LookupUnit("\xE2\x82\xAC")->canonical, "EUR");
  EXPECT_EQ(LookupUnit("euro")->canonical, "EUR");
  EXPECT_EQ(LookupUnit("EUR")->canonical, "EUR");
  EXPECT_EQ(LookupUnit("pounds")->canonical, "GBP");
  EXPECT_EQ(LookupUnit("CDN")->canonical, "CAD");
  EXPECT_EQ(LookupUnit("cad")->canonical, "CAD");
  for (const char* c : {"$", "EUR", "pounds"}) {
    EXPECT_EQ(LookupUnit(c)->category, UnitCategory::kCurrency);
  }
}

TEST(UnitLookupTest, PercentFamily) {
  EXPECT_EQ(LookupUnit("%")->canonical, "percent");
  EXPECT_EQ(LookupUnit("pct")->canonical, "percent");
  auto bps = LookupUnit("bps");
  ASSERT_TRUE(bps.has_value());
  EXPECT_EQ(bps->category, UnitCategory::kPercent);
  EXPECT_DOUBLE_EQ(bps->to_base, 0.01);
}

TEST(UnitLookupTest, PhysicalUnits) {
  EXPECT_EQ(LookupUnit("MPGe")->category, UnitCategory::kFuelEconomy);
  EXPECT_EQ(LookupUnit("g/km")->category, UnitCategory::kEmission);
  EXPECT_EQ(LookupUnit("kWh")->category, UnitCategory::kEnergy);
  EXPECT_EQ(LookupUnit("kg")->category, UnitCategory::kMass);
}

TEST(UnitLookupTest, UnknownTokens) {
  EXPECT_FALSE(LookupUnit("patients").has_value());
  EXPECT_FALSE(LookupUnit("").has_value());
  EXPECT_FALSE(LookupUnit("foo").has_value());
}

TEST(UnitSequenceTest, MultiTokenForms) {
  size_t consumed = 0;
  auto u = LookupUnitSequence({"per", "cent"}, 0, &consumed);
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->canonical, "percent");
  EXPECT_EQ(consumed, 2u);

  u = LookupUnitSequence({"basis", "points"}, 0, &consumed);
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->canonical, "bps");
  EXPECT_EQ(consumed, 2u);

  u = LookupUnitSequence({"g", "/", "km"}, 0, &consumed);
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->canonical, "g/km");
  EXPECT_EQ(consumed, 3u);

  u = LookupUnitSequence({"km", "/", "h"}, 0, &consumed);
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->canonical, "km/h");
}

TEST(UnitSequenceTest, FallsBackToSingleToken) {
  size_t consumed = 0;
  auto u = LookupUnitSequence({"EUR", "there"}, 0, &consumed);
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->canonical, "EUR");
  EXPECT_EQ(consumed, 1u);
}

TEST(HeaderCueTest, CurrencyAndScale) {
  HeaderCue cue = ParseHeaderCue("($ Millions)");
  ASSERT_TRUE(cue.unit.has_value());
  EXPECT_EQ(cue.unit->canonical, "USD");
  EXPECT_DOUBLE_EQ(cue.scale, 1e6);
}

TEST(HeaderCueTest, ScaleOnly) {
  HeaderCue cue = ParseHeaderCue("Income gains (in Mio)");
  EXPECT_FALSE(cue.unit.has_value());
  EXPECT_DOUBLE_EQ(cue.scale, 1e6);
}

TEST(HeaderCueTest, UnitOnly) {
  HeaderCue cue = ParseHeaderCue("Emission (g/km)");
  ASSERT_TRUE(cue.unit.has_value());
  EXPECT_EQ(cue.unit->canonical, "g/km");
  EXPECT_DOUBLE_EQ(cue.scale, 1.0);
}

TEST(HeaderCueTest, PlainHeaderHasNoCue) {
  EXPECT_TRUE(ParseHeaderCue("male").empty());
  EXPECT_TRUE(ParseHeaderCue("2013").empty());
  EXPECT_TRUE(ParseHeaderCue("").empty());
}

TEST(HeaderCueTest, PercentHeader) {
  HeaderCue cue = ParseHeaderCue("% Change");
  ASSERT_TRUE(cue.unit.has_value());
  EXPECT_EQ(cue.unit->canonical, "percent");
}

}  // namespace
}  // namespace briq::quantity
