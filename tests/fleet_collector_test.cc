#include "fleet/collector.h"

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include "obs/export.h"
#include "obs/metrics.h"
#include "util/framing.h"
#include "util/json.h"
#include "util/tcp_listener.h"

namespace briq::fleet {
namespace {

obs::MetricsSnapshot MakeSnapshot(uint64_t docs) {
  obs::MetricsSnapshot s;
  s.counters["briq.stream.documents"] = docs;
  s.gauges["briq.stream.queue_depth"] = 2;
  obs::HistogramSnapshot h;
  h.bounds = {0.01, 0.1};
  h.counts = {docs, 0, 0};
  h.count = docs;
  h.sum = 0.005 * static_cast<double>(docs);
  s.histograms["briq.stream.align_seconds"] = h;
  return s;
}

std::string SnapshotFrame(int worker, uint64_t docs, double ts) {
  util::Json frame = util::Json::Object();
  frame.Set("type", "snapshot");
  frame.Set("worker", worker);
  frame.Set("docs_total", docs);
  frame.Set("ts_monotonic_sec", ts);
  frame.Set("snapshot", obs::MetricsToJson(MakeSnapshot(docs)));
  return frame.Dump(/*indent=*/-1);
}

std::string HeartbeatFrame(int worker, uint64_t docs, double ts) {
  util::Json frame = util::Json::Object();
  frame.Set("type", "heartbeat");
  frame.Set("worker", worker);
  frame.Set("docs_total", docs);
  frame.Set("ts_monotonic_sec", ts);
  return frame.Dump(/*indent=*/-1);
}

/// Polls `condition` until it holds or ~2s pass. The collector thread
/// ingests asynchronously; every assertion on its state needs a deadline,
/// never a fixed sleep.
bool WaitFor(const std::function<bool()>& condition) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return condition();
}

TEST(FleetCollectorTest, MergesSnapshotsAcrossWorkers) {
  Collector collector;
  ASSERT_TRUE(collector.Start().ok());
  ASSERT_NE(collector.port(), 0);

  util::Result<util::ClientSocket> w0 =
      util::ClientSocket::Connect(collector.port());
  util::Result<util::ClientSocket> w1 =
      util::ClientSocket::Connect(collector.port());
  ASSERT_TRUE(w0.ok());
  ASSERT_TRUE(w1.ok());

  ASSERT_TRUE(util::SendFrame(*w0, SnapshotFrame(0, 10, 1.0)));
  ASSERT_TRUE(util::SendFrame(*w1, SnapshotFrame(1, 25, 1.0)));

  ASSERT_TRUE(WaitFor([&] { return collector.frames_received() >= 2; }));
  const obs::MetricsSnapshot merged = collector.Merged();
  EXPECT_EQ(merged.counters.at("briq.stream.documents"), 35u);
  EXPECT_EQ(merged.gauges.at("briq.stream.queue_depth"), 4);
  EXPECT_EQ(merged.histograms.at("briq.stream.align_seconds").count, 35u);
  EXPECT_EQ(collector.WorkerSnapshots().size(), 2u);
  EXPECT_EQ(collector.frame_errors(), 0u);

  // A newer cumulative snapshot from worker 0 replaces its old one.
  ASSERT_TRUE(util::SendFrame(*w0, SnapshotFrame(0, 40, 2.0)));
  ASSERT_TRUE(WaitFor([&] {
    const obs::MetricsSnapshot m = collector.Merged();
    return m.counters.at("briq.stream.documents") == 65u;
  }));

  w0->Close();
  w1->Close();
  EXPECT_TRUE(collector.WaitForDrain(2.0));
  collector.Stop();
}

TEST(FleetCollectorTest, TracksLivenessAndRates) {
  CollectorOptions options;
  options.heartbeat_seconds = 10.0;  // no missed-heartbeat noise here
  Collector collector(options);
  ASSERT_TRUE(collector.Start().ok());

  util::Result<util::ClientSocket> w =
      util::ClientSocket::Connect(collector.port());
  ASSERT_TRUE(w.ok());

  EXPECT_FALSE(collector.Worker(3).has_value());

  // Two reports 2 worker-seconds apart: 100 docs -> 50 docs/sec, computed
  // from the worker's own monotonic timestamps (immune to collector-side
  // scheduling).
  ASSERT_TRUE(util::SendFrame(*w, SnapshotFrame(3, 100, 10.0)));
  ASSERT_TRUE(util::SendFrame(*w, HeartbeatFrame(3, 200, 12.0)));
  ASSERT_TRUE(WaitFor([&] { return collector.frames_received() >= 2; }));

  const std::optional<WorkerTelemetry> telemetry = collector.Worker(3);
  ASSERT_TRUE(telemetry.has_value());
  EXPECT_TRUE(telemetry->ever_reported);
  EXPECT_FALSE(telemetry->missed_heartbeat);
  EXPECT_EQ(telemetry->docs_total, 200u);
  EXPECT_EQ(telemetry->snapshots, 1u);  // heartbeats are not snapshots
  EXPECT_NEAR(telemetry->docs_per_sec, 50.0, 1e-9);
  EXPECT_GE(telemetry->last_frame_age_seconds, 0.0);

  // A restarted worker's monotonic clock starts over (ts goes backwards):
  // the rate reseeds instead of going negative/astronomical.
  ASSERT_TRUE(util::SendFrame(*w, SnapshotFrame(3, 5, 0.5)));
  ASSERT_TRUE(WaitFor([&] { return collector.frames_received() >= 3; }));
  const std::optional<WorkerTelemetry> restarted = collector.Worker(3);
  ASSERT_TRUE(restarted.has_value());
  EXPECT_DOUBLE_EQ(restarted->docs_per_sec, 0.0);

  w->Close();
  collector.Stop();
}

TEST(FleetCollectorTest, FlagsMissedHeartbeatsOnlyAfterFirstFrame) {
  CollectorOptions options;
  options.heartbeat_seconds = 0.05;
  Collector collector(options);
  ASSERT_TRUE(collector.Start().ok());

  util::Result<util::ClientSocket> w =
      util::ClientSocket::Connect(collector.port());
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(util::SendFrame(*w, HeartbeatFrame(0, 0, 0.1)));
  ASSERT_TRUE(WaitFor([&] { return collector.frames_received() >= 1; }));

  // Silence past 2x the heartbeat cadence flags the worker.
  ASSERT_TRUE(WaitFor([&] {
    const std::optional<WorkerTelemetry> t = collector.Worker(0);
    return t.has_value() && t->missed_heartbeat;
  }));

  // The driver restarts the worker and resets liveness: a full grace
  // period before the fresh process can be flagged again.
  collector.ResetWorkerLiveness(0);
  const std::optional<WorkerTelemetry> reset = collector.Worker(0);
  ASSERT_TRUE(reset.has_value());
  EXPECT_FALSE(reset->missed_heartbeat);

  w->Close();
  collector.Stop();
}

TEST(FleetCollectorTest, MalformedStreamDropsOnlyThatConnection) {
  Collector collector;
  ASSERT_TRUE(collector.Start().ok());

  util::Result<util::ClientSocket> bad =
      util::ClientSocket::Connect(collector.port());
  util::Result<util::ClientSocket> good =
      util::ClientSocket::Connect(collector.port());
  ASSERT_TRUE(bad.ok());
  ASSERT_TRUE(good.ok());

  // An absurd length prefix desynchronizes the bad stream for good; the
  // collector must drop that connection, count the error, and keep
  // ingesting from the healthy one.
  const std::string huge = {0x7f, 0x7f, 0x7f, 0x7f, 'j', 'u', 'n', 'k'};
  ASSERT_TRUE(bad->SendAll(huge));
  ASSERT_TRUE(WaitFor([&] { return collector.frame_errors() >= 1; }));

  ASSERT_TRUE(util::SendFrame(*good, SnapshotFrame(1, 12, 1.0)));
  ASSERT_TRUE(WaitFor([&] { return collector.frames_received() >= 1; }));
  EXPECT_EQ(collector.Merged().counters.at("briq.stream.documents"), 12u);

  good->Close();
  bad->Close();
  collector.Stop();
}

TEST(FleetCollectorTest, TornTrailingFrameCountsErrorKeepsEarlierFrames) {
  Collector collector;
  ASSERT_TRUE(collector.Start().ok());

  util::Result<util::ClientSocket> w =
      util::ClientSocket::Connect(collector.port());
  ASSERT_TRUE(w.ok());

  // One complete frame, then a torn one (the worker died mid-send), then
  // EOF: the complete frame's data must survive, the torn tail must be
  // rejected without poisoning anything.
  ASSERT_TRUE(util::SendFrame(*w, SnapshotFrame(0, 30, 1.0)));
  const std::string torn = util::EncodeFrame(SnapshotFrame(0, 99, 2.0));
  ASSERT_TRUE(w->SendAll(torn.substr(0, torn.size() / 2)));
  w->Close();

  ASSERT_TRUE(WaitFor([&] { return collector.frame_errors() >= 1; }));
  EXPECT_EQ(collector.Merged().counters.at("briq.stream.documents"), 30u);
  EXPECT_TRUE(collector.WaitForDrain(2.0));

  // The collector is not poisoned: a new worker connects and merges.
  util::Result<util::ClientSocket> w2 =
      util::ClientSocket::Connect(collector.port());
  ASSERT_TRUE(w2.ok());
  ASSERT_TRUE(util::SendFrame(*w2, SnapshotFrame(1, 7, 1.0)));
  ASSERT_TRUE(WaitFor([&] {
    const obs::MetricsSnapshot m = collector.Merged();
    const auto it = m.counters.find("briq.stream.documents");
    return it != m.counters.end() && it->second == 37u;
  }));
  w2->Close();
  collector.Stop();
}

TEST(FleetCollectorTest, MalformedPayloadInValidFrameIsCountedNotFatal) {
  Collector collector;
  ASSERT_TRUE(collector.Start().ok());

  util::Result<util::ClientSocket> w =
      util::ClientSocket::Connect(collector.port());
  ASSERT_TRUE(w.ok());

  // Correctly framed, semantically broken payloads: not JSON, wrong type,
  // snapshot without a body. Each counts one error; the connection lives.
  ASSERT_TRUE(util::SendFrame(*w, "this is not json"));
  ASSERT_TRUE(util::SendFrame(*w, "{\"type\":\"mystery\",\"worker\":0}"));
  ASSERT_TRUE(util::SendFrame(*w, "{\"type\":\"snapshot\",\"worker\":0}"));
  ASSERT_TRUE(WaitFor([&] { return collector.frame_errors() >= 3; }));

  // Still alive on the same connection.
  ASSERT_TRUE(util::SendFrame(*w, SnapshotFrame(0, 3, 1.0)));
  ASSERT_TRUE(WaitFor([&] { return collector.frames_received() >= 1; }));
  EXPECT_EQ(collector.Merged().counters.at("briq.stream.documents"), 3u);

  w->Close();
  collector.Stop();
}

}  // namespace
}  // namespace briq::fleet
