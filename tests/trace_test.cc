#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "util/json.h"

namespace briq::obs {
namespace {

#ifndef BRIQ_NO_METRICS

TEST(ScopedSpanTest, NestingBuildsATree) {
  TraceRing& ring = TraceRing::Global();
  ring.Clear();
  {
    ScopedSpan doc("document");
    { ScopedSpan prepare("prepare"); }
    {
      ScopedSpan filter("filter");
      AttachLeafSpan("classify", 0.25);
    }
    { ScopedSpan resolve("resolve"); }
  }
  const std::vector<SpanNode> roots = ring.Snapshot();
  ASSERT_EQ(roots.size(), 1u);
  const SpanNode& doc = roots[0];
  EXPECT_EQ(doc.name, "document");
  ASSERT_EQ(doc.children.size(), 3u);
  EXPECT_EQ(doc.children[0].name, "prepare");
  EXPECT_EQ(doc.children[1].name, "filter");
  EXPECT_EQ(doc.children[2].name, "resolve");
  // Children start no earlier than the root and fit inside it.
  for (const SpanNode& child : doc.children) {
    EXPECT_GE(child.start_seconds, 0.0);
    EXPECT_LE(child.start_seconds + child.duration_seconds,
              doc.duration_seconds + 1e-6);
  }
  // The aggregated classify leaf hangs off filter with the -1 sentinel.
  ASSERT_EQ(doc.children[1].children.size(), 1u);
  EXPECT_EQ(doc.children[1].children[0].name, "classify");
  EXPECT_LT(doc.children[1].children[0].start_seconds, 0.0);
  EXPECT_DOUBLE_EQ(doc.children[1].children[0].duration_seconds, 0.25);
}

TEST(ScopedSpanTest, AttachLeafWithoutOpenSpanIsANoOp) {
  TraceRing& ring = TraceRing::Global();
  ring.Clear();
  AttachLeafSpan("orphan", 1.0);
  EXPECT_TRUE(ring.Snapshot().empty());
}

TEST(ScopedSpanTest, SeparateThreadsRecordSeparateRoots) {
  TraceRing& ring = TraceRing::Global();
  ring.Clear();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      ScopedSpan root("thread-" + std::to_string(t));
      ScopedSpan inner("work");
    });
  }
  for (auto& th : threads) th.join();
  const std::vector<SpanNode> roots = ring.Snapshot();
  ASSERT_EQ(roots.size(), 4u);
  for (const SpanNode& root : roots) {
    EXPECT_EQ(root.children.size(), 1u);
  }
}

TEST(TraceRingTest, EvictsOldestBeyondCapacity) {
  TraceRing ring(3);
  for (int i = 0; i < 5; ++i) {
    SpanNode node;
    node.name = "root-" + std::to_string(i);
    ring.Record(std::move(node));
  }
  const std::vector<SpanNode> roots = ring.Snapshot();
  ASSERT_EQ(roots.size(), 3u);
  EXPECT_EQ(roots[0].name, "root-2");  // oldest retained, oldest first
  EXPECT_EQ(roots[1].name, "root-3");
  EXPECT_EQ(roots[2].name, "root-4");
  EXPECT_EQ(ring.dropped(), 2u);
  ring.Clear();
  EXPECT_TRUE(ring.Snapshot().empty());
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceExportTest, JsonRoundTrip) {
  SpanNode root;
  root.name = "document";
  root.start_seconds = 0.0;
  root.duration_seconds = 1.5;
  SpanNode filter;
  filter.name = "filter";
  filter.start_seconds = 0.25;
  filter.duration_seconds = 1.0;
  SpanNode classify;
  classify.name = "classify";
  classify.start_seconds = -1.0;
  classify.duration_seconds = 0.5;
  filter.children.push_back(classify);
  root.children.push_back(filter);

  const util::Json json = SpanToJson(root);
  auto parsed = util::Json::Parse(json.Dump());
  ASSERT_TRUE(parsed.ok());
  auto back = SpanFromJson(*parsed);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->name, "document");
  EXPECT_DOUBLE_EQ(back->duration_seconds, 1.5);
  ASSERT_EQ(back->children.size(), 1u);
  EXPECT_EQ(back->children[0].name, "filter");
  ASSERT_EQ(back->children[0].children.size(), 1u);
  EXPECT_DOUBLE_EQ(back->children[0].children[0].start_seconds, -1.0);
  EXPECT_DOUBLE_EQ(back->children[0].children[0].duration_seconds, 0.5);
}

TEST(TraceExportTest, SpanFromJsonRejectsMalformedInput) {
  auto no_name = util::Json::Parse(R"({"duration_seconds": 1.0})");
  ASSERT_TRUE(no_name.ok());
  EXPECT_FALSE(SpanFromJson(*no_name).ok());
  auto not_object = util::Json::Parse("[1, 2]");
  ASSERT_TRUE(not_object.ok());
  EXPECT_FALSE(SpanFromJson(*not_object).ok());
}

#else  // BRIQ_NO_METRICS

TEST(NoMetricsTraceTest, SpansCompileToNoOpsAndRingStaysEmpty) {
  TraceRing& ring = TraceRing::Global();
  ring.Clear();
  {
    ScopedSpan doc("document");
    AttachLeafSpan("classify", 0.25);
  }
  EXPECT_TRUE(ring.Snapshot().empty());
}

#endif  // BRIQ_NO_METRICS

}  // namespace
}  // namespace briq::obs
