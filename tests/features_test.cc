// Tests of the 12 mention-pair features (paper §IV-B) and the cue-word
// machinery they share with the tagger.

#include "core/features.h"

#include <gtest/gtest.h>

#include "core/cues.h"
#include "core/evaluation.h"
#include "corpus/paper_examples.h"

namespace briq::core {
namespace {

using table::AggregateFunction;

// Index of the text mention with the given surface; -1 if absent.
int TextIdx(const PreparedDocument& doc, const std::string& surface) {
  for (size_t i = 0; i < doc.text_mentions.size(); ++i) {
    if (doc.text_mentions[i].surface() == surface) return static_cast<int>(i);
  }
  return -1;
}

// Index of the table mention matching (func, cells) in table 0.
int TableIdx(const PreparedDocument& doc, AggregateFunction func,
             const std::vector<table::CellRef>& cells) {
  for (size_t j = 0; j < doc.table_mentions.size(); ++j) {
    if (doc.table_mentions[j].func == func &&
        doc.table_mentions[j].cells == cells) {
      return static_cast<int>(j);
    }
  }
  return -1;
}

class FeatureTest : public ::testing::Test {
 protected:
  FeatureTest()
      : doc_(corpus::Figure1aHealth()),
        prepared_(PrepareDocument(doc_, config_)),
        features_(prepared_, config_) {}

  corpus::Document doc_;
  BriqConfig config_;
  PreparedDocument prepared_;
  FeatureComputer features_;
};

TEST_F(FeatureTest, TwelveFeaturesByDefault) {
  int x = TextIdx(prepared_, "38");
  int t = TableIdx(prepared_, AggregateFunction::kNone, {{2, 3}});
  ASSERT_GE(x, 0);
  ASSERT_GE(t, 0);
  EXPECT_EQ(features_.ComputeAll(x, t).size(), 12u);
  EXPECT_EQ(features_.NumActive(), 12);
}

TEST_F(FeatureTest, SurfaceSimilarityHighForExactMatch) {
  int x = TextIdx(prepared_, "38");
  int correct = TableIdx(prepared_, AggregateFunction::kNone, {{2, 3}});
  int wrong = TableIdx(prepared_, AggregateFunction::kNone, {{1, 1}});  // 15
  auto f_good = features_.ComputeAll(x, correct);
  auto f_bad = features_.ComputeAll(x, wrong);
  EXPECT_GT(f_good[0], f_bad[0]);  // f1
  EXPECT_NEAR(f_good[0], 1.0, 1e-9);
}

TEST_F(FeatureTest, ValueFeaturesZeroForExactMatch) {
  int x = TextIdx(prepared_, "38");
  int t = TableIdx(prepared_, AggregateFunction::kNone, {{2, 3}});
  auto f = features_.ComputeAll(x, t);
  EXPECT_DOUBLE_EQ(f[5], 0.0);  // f6 normalized rel diff
  EXPECT_DOUBLE_EQ(f[6], 0.0);  // f7 unnormalized rel diff
  EXPECT_DOUBLE_EQ(f[8], 0.0);  // f9 scale diff
  EXPECT_DOUBLE_EQ(f[9], 0.0);  // f10 precision diff
}

TEST_F(FeatureTest, ContextOverlapPrefersCorrectRow) {
  // "depression, reported by 38" — the Depression row context should
  // overlap more than the Rash row's.
  int x = TextIdx(prepared_, "38");
  int depression_total = TableIdx(prepared_, AggregateFunction::kNone, {{2, 3}});
  int rash_row_cell = TableIdx(prepared_, AggregateFunction::kNone, {{1, 2}});
  auto f_good = features_.ComputeAll(x, depression_total);
  auto f_bad = features_.ComputeAll(x, rash_row_cell);
  EXPECT_GT(f_good[1], f_bad[1]);  // f2 local word overlap
}

TEST_F(FeatureTest, UnitMatchCategories) {
  // Fig 1a has unitless mentions and cells: weak match (2).
  int x = TextIdx(prepared_, "38");
  int t = TableIdx(prepared_, AggregateFunction::kNone, {{2, 3}});
  EXPECT_DOUBLE_EQ(features_.ComputeAll(x, t)[7], 2.0);
}

TEST_F(FeatureTest, AggregateMatchStrongForCuedSum) {
  // "A total of 123" with the sum virtual cell: strong match (3).
  int x = TextIdx(prepared_, "123");
  std::vector<table::CellRef> total_col = {
      {1, 3}, {2, 3}, {3, 3}, {4, 3}, {5, 3}};
  int t_sum = TableIdx(prepared_, AggregateFunction::kSum, total_col);
  ASSERT_GE(x, 0);
  ASSERT_GE(t_sum, 0);
  EXPECT_DOUBLE_EQ(features_.ComputeAll(x, t_sum)[11], 3.0);

  // Against a single cell: weak mismatch (1) — cue on one side only.
  int t_single = TableIdx(prepared_, AggregateFunction::kNone, {{2, 3}});
  EXPECT_DOUBLE_EQ(features_.ComputeAll(x, t_single)[11], 1.0);
}

TEST_F(FeatureTest, AblationMaskDropsGroup) {
  BriqConfig masked = ConfigWithoutGroup(config_, FeatureGroup::kQuantity);
  FeatureComputer fc(prepared_, masked);
  EXPECT_EQ(fc.NumActive(), 7);  // 12 - 5 quantity features
  int x = TextIdx(prepared_, "38");
  int t = TableIdx(prepared_, AggregateFunction::kNone, {{2, 3}});
  EXPECT_EQ(fc.Compute(x, t).size(), 7u);
}

TEST_F(FeatureTest, UniformSimilarityFavorsGoldPair) {
  int x = TextIdx(prepared_, "38");
  int correct = TableIdx(prepared_, AggregateFunction::kNone, {{2, 3}});
  int wrong = TableIdx(prepared_, AggregateFunction::kNone, {{4, 1}});  // 5
  EXPECT_GT(features_.UniformSimilarity(x, correct),
            features_.UniformSimilarity(x, wrong));
}

TEST_F(FeatureTest, FeatureNamesMatchCount) {
  EXPECT_EQ(FeatureComputer::FeatureNames().size(),
            static_cast<size_t>(kNumPairFeatures));
}

TEST(FeatureGroupTest, GroupAssignment) {
  EXPECT_EQ(FeatureGroupOf(0), FeatureGroup::kSurface);
  for (int f : {1, 2, 3, 4, 10, 11}) {
    EXPECT_EQ(FeatureGroupOf(f), FeatureGroup::kContext) << f;
  }
  for (int f : {5, 6, 7, 8, 9}) {
    EXPECT_EQ(FeatureGroupOf(f), FeatureGroup::kQuantity) << f;
  }
}

// ---------------------------------------------------------------------------
// Cue words.
// ---------------------------------------------------------------------------

TEST(CueTest, CueFunctionOf) {
  EXPECT_EQ(CueFunctionOf("total"), AggregateFunction::kSum);
  EXPECT_EQ(CueFunctionOf("Overall"), AggregateFunction::kSum);
  EXPECT_EQ(CueFunctionOf("difference"), AggregateFunction::kDiff);
  EXPECT_EQ(CueFunctionOf("rose"), AggregateFunction::kDiff);
  EXPECT_EQ(CueFunctionOf("share"), AggregateFunction::kPercentage);
  EXPECT_EQ(CueFunctionOf("increased"), AggregateFunction::kChangeRatio);
  EXPECT_EQ(CueFunctionOf("patients"), AggregateFunction::kNone);
}

TEST(CueTest, InferAggregateFunctionFromWindow) {
  auto tokens = text::Tokenize("A total of 123 patients were treated");
  // Mention "123" is token index 3.
  EXPECT_EQ(InferAggregateFunction(tokens, 3, 5), AggregateFunction::kSum);

  tokens = text::Tokenize("revenue increased by 1.5% that year");
  EXPECT_EQ(InferAggregateFunction(tokens, 3, 5),
            AggregateFunction::kChangeRatio);

  tokens = text::Tokenize("reported by 38 patients overall nothing");
  // "overall" within window -> sum.
  EXPECT_EQ(InferAggregateFunction(tokens, 2, 5), AggregateFunction::kSum);

  tokens = text::Tokenize("the value was 42 yesterday");
  EXPECT_EQ(InferAggregateFunction(tokens, 3, 5), AggregateFunction::kNone);
}

TEST(CueTest, CountCuesPerScope) {
  auto tokens =
      text::Tokenize("the total rose and the share increased overall");
  std::vector<int> counts = CountCues(tokens, 0, tokens.size());
  // kCueFunctions order: sum, diff, pct, ratio.
  EXPECT_EQ(counts[0], 2);  // total, overall
  EXPECT_EQ(counts[1], 1);  // rose
  EXPECT_EQ(counts[2], 1);  // share
  EXPECT_EQ(counts[3], 1);  // increased
}

}  // namespace
}  // namespace briq::core
