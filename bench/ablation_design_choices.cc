// Design-choice ablations beyond the paper's Table VII (DESIGN.md §5):
//  (1) Algorithm 1 internals — entropy-based ordering, edge deletion after
//      decisions, and the adaptive top-k of the filter;
//  (2) the full baseline zoo including the QKB exact-match baseline the
//      paper dismissed;
//  (3) the ILP-style joint resolver the paper abandoned: same candidates
//      as the random walk, exact objective, exponential worst case.

#include <algorithm>
#include <iostream>

#include "bench/harness.h"
#include "core/ilp_resolution.h"
#include "core/qkb.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace briq::bench {
namespace {

void Run() {
  ExperimentSetup setup = BuildSetup(/*num_documents=*/300, /*seed=*/2024);

  // ------------------------------------------------------------------
  // (1) Algorithm 1 internals.
  // ------------------------------------------------------------------
  {
    util::TablePrinter printer(
        "Design ablation A: global-resolution internals");
    printer.SetHeader({"variant", "precision", "recall", "F1"});

    auto eval_variant = [&](const char* label, core::BriqConfig config) {
      // Same trained models, different resolution behaviour: BriqSystem
      // holds its own config, so retrain quickly on the same data.
      ExperimentSetup s = BuildSetup(300, 2024, &config);
      core::EvalResult r = core::EvaluateCorpus(*s.system, s.test);
      printer.AddRow({label, Fmt2(r.Precision()), Fmt2(r.Recall()),
                      Fmt2(r.F1())});
    };

    eval_variant("full BriQ", setup.config);
    {
      core::BriqConfig c = setup.config;
      c.entropy_ordering = false;
      eval_variant("w/o entropy ordering", c);
    }
    {
      core::BriqConfig c = setup.config;
      c.edge_deletion = false;
      eval_variant("w/o edge deletion", c);
    }
    {
      core::BriqConfig c = setup.config;
      c.top_k_exact = c.top_k_approx = 5;
      c.top_k_low_entropy = c.top_k_high_entropy = 5;
      eval_variant("fixed top-5 (non-adaptive)", c);
    }
    std::cout << printer.ToString() << std::endl;
  }

  // ------------------------------------------------------------------
  // (2) Baseline zoo incl. QKB.
  // ------------------------------------------------------------------
  {
    util::TablePrinter printer(
        "Design ablation B: baseline zoo (same test split)");
    printer.SetHeader({"system", "precision", "recall", "F1"});
    auto row = [&](const char* name, const core::EvalResult& r) {
      printer.AddRow({name, Fmt2(r.Precision()), Fmt2(r.Recall()),
                      Fmt2(r.F1())});
    };
    row("BriQ", core::EvaluateCorpus(*setup.system, setup.test));
    core::RfOnlyAligner rf(setup.system.get());
    row("RF-only", core::EvaluateCorpus(rf, setup.test));
    core::RwrOnlyAligner rwr(&setup.config);
    row("RWR-only", core::EvaluateCorpus(rwr, setup.test));
    core::QkbAligner qkb;
    row("QKB exact-match", core::EvaluateCorpus(qkb, setup.test));
    std::cout << printer.ToString();
    std::cout << "QKB abstains on approximate/scaled mentions and on "
                 "ambiguity — high precision,\nno aggregate coverage "
                 "(the paper's reason to drop it).\n\n";
  }

  // ------------------------------------------------------------------
  // (3) ILP joint inference vs the random walk.
  // ------------------------------------------------------------------
  {
    util::TablePrinter printer(
        "Design ablation C: ILP-style joint inference (paper §VI: \"did "
        "not scale\")");
    printer.SetHeader({"resolver", "F1", "wall time", "search nodes",
                       "optimal?"});

    const size_t kDocs = std::min<size_t>(setup.test.size(), 25);
    core::FilterTrace unused;

    // RWR path (the shipped resolver).
    util::Stopwatch watch;
    core::EvalResult rwr_result;
    for (size_t i = 0; i < kDocs; ++i) {
      rwr_result.Merge(core::EvaluateDocument(
          setup.test[i], setup.system->Align(setup.test[i])));
    }
    double rwr_time = watch.ElapsedSeconds();

    // ILP path over the identical filtered candidates.
    core::IlpResolver::Options options;
    options.epsilon = setup.config.epsilon;
    core::IlpResolver ilp(options);
    watch.Reset();
    core::EvalResult ilp_result;
    size_t total_nodes = 0;
    bool all_optimal = true;
    for (size_t i = 0; i < kDocs; ++i) {
      core::FeatureComputer features(setup.test[i], setup.config);
      core::AdaptiveFilter filter(&setup.config, &setup.system->tagger(),
                                  &setup.system->classifier());
      auto candidates = filter.Filter(setup.test[i], features, nullptr);
      core::IlpResolver::SearchStats stats;
      ilp_result.Merge(core::EvaluateDocument(
          setup.test[i], ilp.Resolve(setup.test[i], candidates, &stats)));
      total_nodes += stats.nodes_explored;
      all_optimal = all_optimal && stats.optimal;
    }
    double ilp_time = watch.ElapsedSeconds();

    // ILP without the adaptive filter — the configuration the paper
    // actually tried: joint inference over the raw candidate space.
    watch.Reset();
    core::EvalResult raw_result;
    size_t raw_nodes = 0;
    bool raw_optimal = true;
    const size_t kRawDocs = std::min<size_t>(kDocs, 8);
    for (size_t i = 0; i < kRawDocs; ++i) {
      const auto& doc = setup.test[i];
      core::FeatureComputer features(doc, setup.config);
      std::vector<std::vector<core::Candidate>> all_pairs(
          doc.text_mentions.size());
      for (size_t x = 0; x < doc.text_mentions.size(); ++x) {
        for (size_t t = 0; t < doc.table_mentions.size(); ++t) {
          double s = setup.system->classifier().Score(features, x, t);
          if (s > options.epsilon) all_pairs[x].push_back({x, t, s});
        }
        std::sort(all_pairs[x].begin(), all_pairs[x].end(),
                  [](const core::Candidate& a, const core::Candidate& b) {
                    return a.score > b.score;
                  });
      }
      core::IlpResolver::SearchStats stats;
      raw_result.Merge(core::EvaluateDocument(
          doc, ilp.Resolve(doc, all_pairs, &stats)));
      raw_nodes += stats.nodes_explored;
      raw_optimal = raw_optimal && stats.optimal;
    }
    double raw_time = watch.ElapsedSeconds();

    printer.AddRow({"RWR (Algorithm 1)", Fmt2(rwr_result.F1()),
                    Fmt2(rwr_time) + " s", "-", "-"});
    printer.AddRow({"ILP on filtered candidates", Fmt2(ilp_result.F1()),
                    Fmt2(ilp_time) + " s", FmtCount(total_nodes),
                    all_optimal ? "yes" : "capped"});
    printer.AddRow({"ILP on raw pair space*", Fmt2(raw_result.F1()),
                    Fmt2(raw_time) + " s", FmtCount(raw_nodes),
                    raw_optimal ? "yes" : "capped"});
    std::cout << printer.ToString();
    std::cout << "* raw pair space limited to " << kRawDocs
              << " documents; node counts include scoring every pair — the\n"
                 "  scaling failure that pushed the paper to random walks.\n"
              << std::endl;
  }
}

}  // namespace
}  // namespace briq::bench

int main() {
  briq::bench::Run();
  return 0;
}
