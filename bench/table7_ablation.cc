// Reproduces Table VII: ablation study. Each feature group (surface form
// similarity / context features / quantity features) is removed in turn
// and all three systems are retrained, tuned and tested end to end.
// Expected shape: BriQ stays robust (precision stable, recall dips most
// when context features go); removing quantity features *helps* the RF
// baseline (fewer plausible virtual cells to confuse it).

#include <iostream>

#include "bench/harness.h"
#include "util/table_printer.h"

namespace briq::bench {
namespace {

struct PaperRow {
  const char* label;
  // recall RF/RWR/BriQ, precision RF/RWR/BriQ, F1 RF/RWR/BriQ
  double r[3], p[3], f[3];
};

constexpr PaperRow kPaper[] = {
    {"all features", {0.43, 0.52, 0.68}, {0.37, 0.53, 0.79}, {0.40, 0.53, 0.73}},
    {"w/o surf. sim.", {0.37, 0.36, 0.65}, {0.33, 0.39, 0.77}, {0.35, 0.37, 0.70}},
    {"w/o context", {0.43, 0.38, 0.59}, {0.34, 0.44, 0.77}, {0.38, 0.41, 0.67}},
    {"w/o quantity", {0.43, 0.31, 0.61}, {0.54, 0.35, 0.77}, {0.48, 0.33, 0.68}},
};

void Run() {
  util::TablePrinter printer(
      "Table VII: ablation study — recall, precision and F1\n"
      "(measured; paper values in parentheses)");
  printer.SetHeader({"features", "metric", "RF", "RWR", "BriQ"});

  auto run_config = [&](const char* label, const core::BriqConfig& config,
                        const PaperRow& paper) {
    ExperimentSetup setup =
        BuildSetup(/*num_documents=*/300, /*seed=*/2024, &config);
    core::RfOnlyAligner rf(setup.system.get());
    core::RwrOnlyAligner rwr(&setup.config);
    core::EvalResult r_rf = core::EvaluateCorpus(rf, setup.test);
    core::EvalResult r_rwr = core::EvaluateCorpus(rwr, setup.test);
    core::EvalResult r_briq = core::EvaluateCorpus(*setup.system, setup.test);

    auto row = [&](const char* metric, double m_rf, double m_rwr,
                   double m_briq, const double* pv) {
      printer.AddRow({label, metric, Fmt2(m_rf) + " (" + Fmt2(pv[0]) + ")",
                      Fmt2(m_rwr) + " (" + Fmt2(pv[1]) + ")",
                      Fmt2(m_briq) + " (" + Fmt2(pv[2]) + ")"});
    };
    row("recall", r_rf.Recall(), r_rwr.Recall(), r_briq.Recall(), paper.r);
    row("prec.", r_rf.Precision(), r_rwr.Precision(), r_briq.Precision(),
        paper.p);
    row("F1", r_rf.F1(), r_rwr.F1(), r_briq.F1(), paper.f);
    printer.AddSeparator();
  };

  core::BriqConfig base;
  run_config("all features", base, kPaper[0]);
  run_config("w/o surf. sim.",
             core::ConfigWithoutGroup(base, core::FeatureGroup::kSurface),
             kPaper[1]);
  run_config("w/o context",
             core::ConfigWithoutGroup(base, core::FeatureGroup::kContext),
             kPaper[2]);
  run_config("w/o quantity",
             core::ConfigWithoutGroup(base, core::FeatureGroup::kQuantity),
             kPaper[3]);

  std::cout << printer.ToString() << std::endl;
}

}  // namespace
}  // namespace briq::bench

int main() {
  briq::bench::Run();
  return 0;
}
