// Reproduces Table II of the paper: precision / recall / F1 for original,
// truncated, and rounded text mentions, for the RF and RWR baselines and
// for BriQ. Expected shape: BriQ >> RWR >> RF in every condition; quality
// degrades from original to truncated to rounded.

#include <iostream>

#include "bench/harness.h"
#include "corpus/perturb.h"
#include "util/table_printer.h"

namespace briq::bench {
namespace {

struct PaperRow {
  const char* metric;
  double rf, rwr, briq;
};

// Paper values for reference printing (Table II).
constexpr PaperRow kPaperOriginal[] = {{"recall", 0.43, 0.52, 0.68},
                                       {"prec.", 0.37, 0.53, 0.79},
                                       {"F1", 0.40, 0.53, 0.73}};
constexpr PaperRow kPaperTruncated[] = {{"recall", 0.27, 0.42, 0.58},
                                        {"prec.", 0.25, 0.44, 0.63},
                                        {"F1", 0.26, 0.43, 0.60}};
constexpr PaperRow kPaperRounded[] = {{"recall", 0.13, 0.34, 0.49},
                                      {"prec.", 0.10, 0.35, 0.52},
                                      {"F1", 0.11, 0.34, 0.51}};

void Run() {
  ExperimentSetup setup = BuildSetup(/*num_documents=*/400, /*seed=*/2024);

  core::RfOnlyAligner rf(setup.system.get());
  core::RwrOnlyAligner rwr(&setup.config);

  auto evaluate = [&](const std::vector<core::PreparedDocument>& docs) {
    struct Triple {
      core::EvalResult rf, rwr, briq;
    } r;
    r.rf = core::EvaluateCorpus(rf, docs);
    r.rwr = core::EvaluateCorpus(rwr, docs);
    r.briq = core::EvaluateCorpus(*setup.system, docs);
    return r;
  };

  // Perturbed copies of the *test* documents only (models stay fixed).
  const size_t n = setup.corpus.size();
  corpus::Corpus test_truncated;
  corpus::Corpus test_rounded;
  for (size_t i = n * 9 / 10; i < n; ++i) {
    test_truncated.documents.push_back(corpus::PerturbDocument(
        setup.corpus.documents[i], corpus::PerturbMode::kTruncate));
    test_rounded.documents.push_back(corpus::PerturbDocument(
        setup.corpus.documents[i], corpus::PerturbMode::kRound));
  }

  auto original = evaluate(setup.test);
  auto truncated = evaluate(PrepareAll(test_truncated, setup.config));
  auto rounded = evaluate(PrepareAll(test_rounded, setup.config));

  util::TablePrinter printer(
      "Table II: results for original, truncated and rounded text mentions\n"
      "(measured on the synthetic tableS corpus; paper values in "
      "parentheses)");
  printer.SetHeader({"condition", "metric", "RF", "RWR", "BriQ"});

  auto add_block = [&](const char* label, const auto& measured,
                       const PaperRow (&paper)[3]) {
    auto row = [&](const char* metric, double m_rf, double m_rwr,
                   double m_briq, const PaperRow& p) {
      printer.AddRow({label, metric, Fmt2(m_rf) + " (" + Fmt2(p.rf) + ")",
                      Fmt2(m_rwr) + " (" + Fmt2(p.rwr) + ")",
                      Fmt2(m_briq) + " (" + Fmt2(p.briq) + ")"});
    };
    row("recall", measured.rf.Recall(), measured.rwr.Recall(),
        measured.briq.Recall(), paper[0]);
    row("prec.", measured.rf.Precision(), measured.rwr.Precision(),
        measured.briq.Precision(), paper[1]);
    row("F1", measured.rf.F1(), measured.rwr.F1(), measured.briq.F1(),
        paper[2]);
    printer.AddSeparator();
  };

  add_block("original", original, kPaperOriginal);
  add_block("truncated", truncated, kPaperTruncated);
  add_block("rounded", rounded, kPaperRounded);

  std::cout << printer.ToString() << std::endl;
}

}  // namespace
}  // namespace briq::bench

int main() {
  briq::bench::Run();
  return 0;
}
