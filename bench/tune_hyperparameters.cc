// Hyperparameter tuning on the withheld validation split (paper §VII-C:
// "We use grid search to choose the best values for the hyper-parameters").
// Tunes the global-resolution knobs (alpha, beta, epsilon) and the filter's
// value-pruning threshold, then reports validation-vs-test F1 for the best
// point against the shipped defaults.

#include <iostream>

#include "bench/harness.h"
#include "ml/grid_search.h"
#include "util/table_printer.h"

namespace briq::bench {
namespace {

void Run() {
  ExperimentSetup setup = BuildSetup(/*num_documents=*/300, /*seed=*/2024);

  // The expensive parts (classifier + tagger training) do not depend on
  // the filtering/resolution knobs, so one trained system serves the whole
  // grid: mutate its live config per point and restore afterwards.
  const core::BriqConfig defaults = setup.system->config();
  auto evaluate_with = [&](const ml::ParamMap& params,
                           const std::vector<core::PreparedDocument>& docs) {
    core::BriqConfig* config = setup.system->mutable_config();
    config->alpha = params.at("alpha");
    config->beta = 1.0 - params.at("alpha");
    config->epsilon = params.at("epsilon");
    config->prune_value_diff = params.at("prune_value_diff");
    double f1 = core::EvaluateCorpus(*setup.system, docs).F1();
    *config = defaults;
    return f1;
  };

  ml::ParamGrid grid = {
      {"alpha", {0.4, 0.6, 0.8}},
      {"epsilon", {0.02, 0.05, 0.1}},
      {"prune_value_diff", {0.15, 0.25}},
  };

  std::cout << "grid searching " << ml::ExpandGrid(grid).size()
            << " configurations on the validation split...\n";
  ml::GridSearchResult result =
      ml::GridSearch(grid, [&](const ml::ParamMap& p) {
        return evaluate_with(p, setup.validation);
      });

  util::TablePrinter printer("validation grid search (Algorithm 1 knobs)");
  printer.SetHeader({"parameter", "best value"});
  for (const auto& [name, value] : result.best_params) {
    printer.AddRow({name, Fmt2(value)});
  }
  printer.AddRow({"validation F1", Fmt2(result.best_score)});
  std::cout << printer.ToString();

  // Compare defaults vs tuned on the untouched test split.
  double default_test =
      core::EvaluateCorpus(*setup.system, setup.test).F1();
  double tuned_test = evaluate_with(result.best_params, setup.test);
  std::cout << "test F1: defaults " << Fmt2(default_test) << ", tuned "
            << Fmt2(tuned_test) << "\n";
}

}  // namespace
}  // namespace briq::bench

int main() {
  briq::bench::Run();
  return 0;
}
