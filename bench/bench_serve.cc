// Load generator for the serving layer (DESIGN.md §5h): trains a small
// BriQ system, hosts it behind an in-process serve::HttpServer, and sweeps
// client concurrency over POST /align with keep-alive connections. Each
// sweep level reports request count, error count, p50/p95/p99 latency, and
// QPS; the summary records the max sustained QPS across the sweep.
//
//   bench_serve [--quick] [--out BENCH_serve.json]
//               [--serve-threads N] [--seconds S]
//
// --quick shrinks the corpus and the sweep for use as a ctest smoke.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "corpus/serialization.h"
#include "serve/align_service.h"
#include "serve/http_client.h"
#include "serve/http_server.h"
#include "serve/router.h"
#include "serve/serve_stats.h"
#include "util/json.h"

namespace briq {
namespace {

struct SweepRow {
  int concurrency = 0;
  size_t requests = 0;
  size_t errors = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// Server-side p99 for the level from ServeStats' rolling window —
  /// excludes client/socket time, so the gap to `p99_ms` is the wire +
  /// client-scheduling overhead.
  double window_p99_ms = 0.0;
};

double PercentileMs(std::vector<double>* sorted_ms, double q) {
  if (sorted_ms->empty()) return 0.0;
  const size_t idx = std::min(
      sorted_ms->size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_ms->size() - 1)));
  return (*sorted_ms)[idx];
}

/// Runs `concurrency` keep-alive clients against the server for
/// `seconds`, cycling through `bodies`. Latencies are per-request
/// round-trip times as the client sees them.
SweepRow RunLevel(uint16_t port, const std::vector<std::string>& bodies,
                  int concurrency, double seconds) {
  std::vector<std::vector<double>> latencies_ms(concurrency);
  std::vector<size_t> errors(concurrency, 0);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(concurrency);
  for (int c = 0; c < concurrency; ++c) {
    threads.emplace_back([&, c] {
      auto client = serve::HttpClient::Connect(port);
      if (!client.ok()) {
        ++errors[c];
        return;
      }
      while (!go.load()) std::this_thread::yield();
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(seconds));
      size_t i = static_cast<size_t>(c);
      while (std::chrono::steady_clock::now() < deadline) {
        const std::string& body = bodies[i++ % bodies.size()];
        const auto start = std::chrono::steady_clock::now();
        auto response = client->Request(
            "POST", "/align", body, {{"Content-Type", "application/json"}});
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (response.ok() && response->status == 200) {
          latencies_ms[c].push_back(ms);
        } else {
          ++errors[c];
          if (!client->connected()) break;  // server went away; stop early
        }
      }
    });
  }

  const auto wall_start = std::chrono::steady_clock::now();
  go.store(true);
  for (auto& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  SweepRow row;
  row.concurrency = concurrency;
  row.wall_seconds = wall;
  std::vector<double> all_ms;
  for (int c = 0; c < concurrency; ++c) {
    row.errors += errors[c];
    all_ms.insert(all_ms.end(), latencies_ms[c].begin(),
                  latencies_ms[c].end());
  }
  row.requests = all_ms.size();
  std::sort(all_ms.begin(), all_ms.end());
  row.p50_ms = PercentileMs(&all_ms, 0.50);
  row.p95_ms = PercentileMs(&all_ms, 0.95);
  row.p99_ms = PercentileMs(&all_ms, 0.99);
  row.qps = wall > 0.0 ? static_cast<double>(row.requests) / wall : 0.0;
  return row;
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_serve.json";
  int serve_threads = 0;  // hardware concurrency
  double seconds = 0.0;   // 0 = pick by mode below
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--serve-threads" && i + 1 < argc) {
      serve_threads = std::stoi(argv[++i]);
    } else if (arg == "--seconds" && i + 1 < argc) {
      seconds = std::stod(argv[++i]);
    }
  }
  if (seconds <= 0.0) seconds = quick ? 0.5 : 3.0;
  const std::vector<int> sweep =
      quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};

  std::printf("bench_serve: training a %s system...\n",
              quick ? "quick" : "full");
  bench::ExperimentSetup setup =
      bench::BuildSetup(quick ? 40 : 150, /*seed=*/2026);

  // Request bodies: every corpus document as the JSON the tool would feed.
  std::vector<std::string> bodies;
  bodies.reserve(setup.corpus.documents.size());
  for (const corpus::Document& doc : setup.corpus.documents) {
    bodies.push_back(corpus::DocumentToJson(doc).Dump());
  }

  serve::Router router;
  serve::RegisterAlignRoute(&router, setup.system.get());
  serve::HttpServerOptions options;
  options.num_threads = serve_threads;
  options.queue_capacity = 128;
  serve::HttpServer server(std::move(router), options);
  const util::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "bench_serve: server failed to start: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("bench_serve: serving on 127.0.0.1:%u, %.1fs per level\n",
              server.port(), seconds);

  std::vector<SweepRow> rows;
  double max_sustained_qps = 0.0;
  for (int concurrency : sweep) {
    // Fresh rolling windows per level, so the window p99 read afterwards
    // covers exactly this level's requests.
    serve::ServeStats::Global().Reset();
    SweepRow row = RunLevel(server.port(), bodies, concurrency, seconds);
    row.window_p99_ms =
        serve::ServeStats::Global().Window().p99_seconds * 1000.0;
    std::printf(
        "  c=%-2d  %6zu req  %4zu err  %8.1f qps  "
        "p50 %6.2fms  p95 %6.2fms  p99 %6.2fms  window p99 %6.2fms\n",
        row.concurrency, row.requests, row.errors, row.qps, row.p50_ms,
        row.p95_ms, row.p99_ms, row.window_p99_ms);
    // "Sustained" means the level completed without shedding or failures.
    if (row.errors == 0 && row.requests > 0) {
      max_sustained_qps = std::max(max_sustained_qps, row.qps);
    }
    rows.push_back(row);
  }
  const size_t rejected = server.connections_rejected();
  server.Stop();

  util::Json doc = util::Json::Object();
  doc.Set("bench", util::Json("serve"));
  doc.Set("mode", util::Json(quick ? "quick" : "full"));
  doc.Set("server_threads", util::Json(static_cast<int>(
                                serve_threads > 0
                                    ? static_cast<unsigned>(serve_threads)
                                    : std::thread::hardware_concurrency())));
  doc.Set("seconds_per_level", util::Json(seconds));
  doc.Set("connections_rejected", util::Json(rejected));
  doc.Set("max_sustained_qps", util::Json(max_sustained_qps));
  util::Json sweep_json = util::Json::Array();
  for (const SweepRow& row : rows) {
    util::Json r = util::Json::Object();
    r.Set("concurrency", util::Json(row.concurrency));
    r.Set("requests", util::Json(row.requests));
    r.Set("errors", util::Json(row.errors));
    r.Set("wall_seconds", util::Json(row.wall_seconds));
    r.Set("qps", util::Json(row.qps));
    r.Set("p50_ms", util::Json(row.p50_ms));
    r.Set("p95_ms", util::Json(row.p95_ms));
    r.Set("p99_ms", util::Json(row.p99_ms));
    r.Set("window_p99_ms", util::Json(row.window_p99_ms));
    sweep_json.Append(std::move(r));
  }
  doc.Set("sweep", std::move(sweep_json));

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_serve: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << doc.Dump(2) << "\n";
  std::printf("bench_serve: max sustained %.1f qps -> %s\n",
              max_sustained_qps, out_path.c_str());

  // A bench run where every level errored out is a failure, not a datum.
  for (const SweepRow& row : rows) {
    if (row.requests > 0) return 0;
  }
  std::fprintf(stderr, "bench_serve: no successful requests\n");
  return 1;
}

}  // namespace
}  // namespace briq

int main(int argc, char** argv) { return briq::Main(argc, argv); }
