// Reproduces Table V: results by mention type for full BriQ. Expected
// shape: single-cell best (~0.79 F1 in the paper), sum strong, diff
// moderate, percent and change ratio weakest (rare classes get weak
// priors).

#include "bench/by_type_common.h"

int main() {
  using namespace briq::bench;
  ExperimentSetup setup = BuildSetup(/*num_documents=*/400, /*seed=*/2024);
  // Paper Table V.
  ByTypePaper paper = {{0.74, 0.62, 0.10, 0.20, 0.75},
                       {0.71, 0.33, 0.75, 0.30, 0.84},
                       {0.72, 0.43, 0.17, 0.24, 0.79}};
  PrintByType(
      "Table V: results by mention type, BriQ (paper values in parentheses)",
      *setup.system, setup.test, paper);
  return 0;
}
