// Feature-importance report: mean decrease in gini impurity per mention-
// pair feature across the trained Random Forest — the fine-grained
// companion to the paper's group-level ablation (Table VII). Also reports
// the classifier's ROC-AUC on held-out pairs, since the paper optimizes
// the loss "for the area under the ROC curve".

#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench/harness.h"
#include "core/gt_matching.h"
#include "ml/calibration.h"
#include "ml/metrics.h"
#include "util/table_printer.h"

namespace briq::bench {
namespace {

void Run() {
  ExperimentSetup setup = BuildSetup(/*num_documents=*/300, /*seed=*/2024);

  // Importance ranking (buffer-reuse API; one call here, but benches that
  // recompute importance per configuration share this buffer pattern).
  std::vector<double> importance;
  setup.system->classifier().forest().FeatureImportance(&importance);
  std::vector<std::string> names = core::FeatureComputer::FeatureNames();
  std::vector<size_t> order(importance.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return importance[a] > importance[b]; });

  util::TablePrinter printer(
      "Mention-pair feature importance (mean gini decrease, normalized)");
  printer.SetHeader({"rank", "feature", "group", "importance"});
  for (size_t rank = 0; rank < order.size(); ++rank) {
    size_t f = order[rank];
    const char* group =
        core::FeatureGroupOf(static_cast<int>(f)) ==
                core::FeatureGroup::kSurface
            ? "surface"
            : (core::FeatureGroupOf(static_cast<int>(f)) ==
                       core::FeatureGroup::kContext
                   ? "context"
                   : "quantity");
    printer.AddRow({std::to_string(rank + 1), names[f], group,
                    Fmt2(importance[f])});
  }
  std::cout << printer.ToString() << std::endl;

  // Held-out ROC-AUC of the pair classifier: gold pairs vs the hardest
  // negatives (closest-value non-targets), mirroring training sampling.
  std::vector<double> scores;
  std::vector<int> labels;
  for (const auto& doc : setup.test) {
    core::FeatureComputer features(doc, setup.config);
    for (const auto& m : core::MatchGroundTruth(doc)) {
      if (m.text_idx < 0 || m.table_idx < 0) continue;
      scores.push_back(
          setup.system->classifier().Score(features, m.text_idx, m.table_idx));
      labels.push_back(1);
      // The hardest negatives: the numerically closest non-targets (the
      // same regime as training).
      const double xv = doc.text_mentions[m.text_idx].q.value;
      std::vector<size_t> order_neg(doc.table_mentions.size());
      std::iota(order_neg.begin(), order_neg.end(), 0);
      std::sort(order_neg.begin(), order_neg.end(), [&](size_t a, size_t b) {
        return quantity::RelativeDifference(xv, doc.table_mentions[a].value) <
               quantity::RelativeDifference(xv, doc.table_mentions[b].value);
      });
      int taken = 0;
      for (size_t j : order_neg) {
        if (taken >= 5) break;
        if (static_cast<int>(j) == m.table_idx) continue;
        scores.push_back(
            setup.system->classifier().Score(features, m.text_idx, j));
        labels.push_back(0);
        ++taken;
      }
    }
  }
  std::cout << "held-out pair-classifier ROC-AUC: "
            << Fmt2(ml::RocAuc(scores, labels)) << "  (" << labels.size()
            << " pairs)\n";

  // Calibration check: the pipeline feeds these probabilities into the
  // global-resolution prior, which relies on RF vote fractions being well
  // calibrated (paper §IV-A).
  std::cout << "expected calibration error: "
            << Fmt2(ml::ExpectedCalibrationError(scores, labels))
            << ", Brier score: " << Fmt2(ml::BrierScore(scores, labels))
            << "\n\nreliability diagram (hard held-out pairs):\n"
            << ml::RenderReliabilityDiagram(
                   ml::ReliabilityDiagram(scores, labels));
}

}  // namespace
}  // namespace briq::bench

int main() {
  briq::bench::Run();
  return 0;
}
