// Reproduces the behaviour behind Figures 3 and 4 of the paper: the text
// mentions "11%" and "13.3%" match cells in *both* tables; only joint
// inference over the neighbouring mentions "5%" and "60 bps" (which exist
// in Table 1 alone) resolves them. BriQ's random-walk resolution should
// place all four mentions in Table 1, while the classifier-only baseline
// has no mechanism to couple the decisions.

#include <iostream>

#include "bench/harness.h"
#include "core/gt_matching.h"
#include "corpus/paper_examples.h"
#include "util/table_printer.h"

namespace briq::bench {
namespace {

void Run() {
  ExperimentSetup setup = BuildSetup(/*num_documents=*/300, /*seed=*/2024);

  corpus::Document doc = corpus::Figure3CoupledQuantities();
  core::PreparedDocument prepared =
      core::PrepareDocument(doc, setup.config);

  core::DocumentAlignment briq = setup.system->Align(prepared);
  core::RfOnlyAligner rf_aligner(setup.system.get());
  core::DocumentAlignment rf = rf_aligner.Align(prepared);

  auto matched = core::MatchGroundTruth(prepared);

  util::TablePrinter printer(
      "Figure 3/4: coupled quantities across two candidate tables\n"
      "(all four mentions belong to Table 1 = index 0)");
  printer.SetHeader({"mention", "gold table", "BriQ table", "RF table",
                     "BriQ target correct?"});

  int briq_correct = 0;
  for (const auto& m : matched) {
    std::string briq_table = "-";
    std::string rf_table = "-";
    bool correct = false;
    if (m.text_idx >= 0) {
      if (const auto* d = briq.ForTextMention(m.text_idx)) {
        briq_table = std::to_string(
            prepared.table_mentions[d->table_idx].table_index);
        correct = m.table_idx == d->table_idx;
      }
      if (const auto* d = rf.ForTextMention(m.text_idx)) {
        rf_table = std::to_string(
            prepared.table_mentions[d->table_idx].table_index);
      }
    }
    if (correct) ++briq_correct;
    printer.AddRow({m.gt->surface,
                    std::to_string(m.gt->target.table_index), briq_table,
                    rf_table, correct ? "yes" : "no"});
  }
  std::cout << printer.ToString() << std::endl;
  std::cout << "BriQ resolved " << briq_correct << " of " << matched.size()
            << " coupled mentions to the exact gold cell.\n";
}

}  // namespace
}  // namespace briq::bench

int main() {
  briq::bench::Run();
  return 0;
}
