// Reproduces Table III: results by mention type for the RF-only baseline.
// Expected shape: single-cell is the only type RF handles decently;
// aggregates (sum especially) collapse without joint inference.

#include "bench/by_type_common.h"

int main() {
  using namespace briq::bench;
  ExperimentSetup setup = BuildSetup(/*num_documents=*/400, /*seed=*/2024);
  briq::core::RfOnlyAligner rf(setup.system.get());
  // Paper Table III.
  ByTypePaper paper = {{0.00, 0.27, 0.03, 0.06, 0.48},
                       {0.00, 0.04, 0.02, 0.01, 0.70},
                       {0.00, 0.06, 0.03, 0.02, 0.57}};
  PrintByType(
      "Table III: results by mention type, RF baseline (paper values in "
      "parentheses)",
      rf, setup.test, paper);
  return 0;
}
