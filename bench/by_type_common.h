#ifndef BRIQ_BENCH_BY_TYPE_COMMON_H_
#define BRIQ_BENCH_BY_TYPE_COMMON_H_

#include <iostream>
#include <map>

#include "bench/harness.h"
#include "util/table_printer.h"

namespace briq::bench {

/// Paper reference values for one by-type results table (Tables III-V):
/// rows recall/precision/F1, columns sum/diff/percent/ratio/single-cell.
struct ByTypePaper {
  double recall[5];
  double precision[5];
  double f1[5];
};

/// Prints a Tables-III/IV/V-style by-mention-type result table for the
/// given aligner, with the paper's numbers in parentheses.
inline void PrintByType(const char* title, const core::Aligner& aligner,
                        const std::vector<core::PreparedDocument>& test,
                        const ByTypePaper& paper) {
  core::EvalResult r = core::EvaluateCorpus(aligner, test);

  const table::AggregateFunction funcs[] = {
      table::AggregateFunction::kSum, table::AggregateFunction::kDiff,
      table::AggregateFunction::kPercentage,
      table::AggregateFunction::kChangeRatio,
      table::AggregateFunction::kNone};

  util::TablePrinter printer(title);
  printer.SetHeader(
      {"metric", "sum", "diff.", "percent", "change ratio", "single-cell"});
  auto row = [&](const char* name, auto metric, const double* paper_vals) {
    std::vector<std::string> cells = {name};
    for (int i = 0; i < 5; ++i) {
      ml::BinaryCounts c;
      auto it = r.by_type.find(funcs[i]);
      if (it != r.by_type.end()) c = it->second;
      cells.push_back(Fmt2(metric(c)) + " (" + Fmt2(paper_vals[i]) + ")");
    }
    printer.AddRow(cells);
  };
  row("recall", [](const ml::BinaryCounts& c) { return c.Recall(); },
      paper.recall);
  row("prec.", [](const ml::BinaryCounts& c) { return c.Precision(); },
      paper.precision);
  row("F1", [](const ml::BinaryCounts& c) { return c.F1(); }, paper.f1);
  std::cout << printer.ToString() << std::endl;
}

}  // namespace briq::bench

#endif  // BRIQ_BENCH_BY_TYPE_COMMON_H_
