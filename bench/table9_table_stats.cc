// Reproduces Table IX: table statistics by domain — average rows, columns,
// single cells, and virtual cells per table. The generator profiles are
// calibrated against these numbers; the shape to verify is the relative
// ordering (sports has by far the most virtual cells, health by far the
// fewest).

#include <iostream>

#include "bench/harness.h"
#include "table/virtual_cell.h"
#include "util/table_printer.h"

namespace briq::bench {
namespace {

struct PaperRow {
  const char* domain;
  int rows, cols, single_cells, virtual_cells;
};

constexpr PaperRow kPaper[] = {
    {"environment", 7, 4, 21, 243}, {"finance", 7, 4, 16, 142},
    {"health", 3, 2, 4, 26},        {"politics", 8, 3, 17, 137},
    {"sports", 8, 6, 35, 523},      {"others", 7, 4, 21, 252},
};

void Run() {
  util::TablePrinter printer(
      "Table IX: table statistics by domain — averages per table\n"
      "(measured; paper values in parentheses)");
  printer.SetHeader({"domain", "rows", "columns", "single cells",
                     "virtual cells"});

  core::BriqConfig config;
  double sum_rows = 0, sum_cols = 0, sum_single = 0, sum_virtual = 0;
  size_t total_tables = 0;

  for (const PaperRow& row : kPaper) {
    corpus::CorpusOptions options;
    options.num_documents = 150;
    options.seed = 4711;
    options.domain_weights = {{row.domain, 1.0}};
    corpus::Corpus domain_corpus = corpus::GenerateCorpus(options);

    double rows_acc = 0, cols_acc = 0, single_acc = 0, virtual_acc = 0;
    size_t tables = 0;
    for (const corpus::Document& d : domain_corpus.documents) {
      for (const table::Table& t : d.tables) {
        table::VirtualCellStats stats;
        table::GenerateTableMentions(t, 0, config.virtual_cells, &stats);
        rows_acc += t.num_rows();
        cols_acc += t.num_cols();
        single_acc += static_cast<double>(stats.single_cells);
        virtual_acc += static_cast<double>(stats.virtual_total());
        ++tables;
      }
    }
    sum_rows += rows_acc;
    sum_cols += cols_acc;
    sum_single += single_acc;
    sum_virtual += virtual_acc;
    total_tables += tables;

    auto avg = [&](double acc) {
      return FmtCount(static_cast<size_t>(acc / tables + 0.5));
    };
    printer.AddRow({row.domain,
                    avg(rows_acc) + " (" + std::to_string(row.rows) + ")",
                    avg(cols_acc) + " (" + std::to_string(row.cols) + ")",
                    avg(single_acc) + " (" + std::to_string(row.single_cells) + ")",
                    avg(virtual_acc) + " (" + std::to_string(row.virtual_cells) +
                        ")"});
  }
  printer.AddSeparator();
  auto avg_all = [&](double acc) {
    return FmtCount(static_cast<size_t>(acc / total_tables + 0.5));
  };
  printer.AddRow({"average", avg_all(sum_rows) + " (7)",
                  avg_all(sum_cols) + " (4)", avg_all(sum_single) + " (19)",
                  avg_all(sum_virtual) + " (220)"});
  std::cout << printer.ToString() << std::endl;
  std::cout << "Note: virtual cells counted as generated aggregate mentions "
               "(sum/diff/pct/ratio over\nordered pairs); the paper's "
               "convention appears to count pairs once, so absolute counts\n"
               "run higher here while the cross-domain ordering is the "
               "reproduced shape.\n";
}

}  // namespace
}  // namespace briq::bench

int main() {
  briq::bench::Run();
  return 0;
}
