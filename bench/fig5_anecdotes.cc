// Reproduces Figure 5 of the paper: three anecdotal success cases —
// (a) a change ratio ("increase of 33.65%") aligned to the correct cell
// pair, (b) percentages of a census total, and (c) an approximate
// difference of net earnings. Prints each mention with its gold target
// and BriQ's decision.

#include <iostream>

#include "bench/harness.h"
#include "core/gt_matching.h"
#include "corpus/paper_examples.h"
#include "util/table_printer.h"

namespace briq::bench {
namespace {

void RunExample(const ExperimentSetup& setup, const corpus::Document& doc,
                const char* label) {
  core::PreparedDocument prepared = core::PrepareDocument(doc, setup.config);
  core::DocumentAlignment alignment = setup.system->Align(prepared);
  auto matched = core::MatchGroundTruth(prepared);

  util::TablePrinter printer(std::string("Figure 5") + label + ": " + doc.id);
  printer.SetHeader({"mention", "gold target", "BriQ decision", "correct?"});
  int correct = 0;
  for (const auto& m : matched) {
    std::string gold =
        m.table_idx >= 0
            ? prepared.table_mentions[m.table_idx].DebugString()
            : "(target not generated)";
    std::string decision = "(no alignment)";
    bool ok = false;
    if (m.text_idx >= 0) {
      if (const auto* d = alignment.ForTextMention(m.text_idx)) {
        decision = prepared.table_mentions[d->table_idx].DebugString();
        ok = d->table_idx == m.table_idx;
      }
    }
    if (ok) ++correct;
    printer.AddRow({m.gt->surface, gold, decision, ok ? "yes" : "no"});
  }
  std::cout << printer.ToString();
  std::cout << "correct: " << correct << "/" << matched.size() << "\n\n";
}

void Run() {
  ExperimentSetup setup = BuildSetup(/*num_documents=*/300, /*seed=*/2024);
  RunExample(setup, corpus::Figure5aCarSales(), "a");
  RunExample(setup, corpus::Figure5bCensus(), "b");
  RunExample(setup, corpus::Figure5cEarnings(), "c");
}

}  // namespace
}  // namespace briq::bench

int main() {
  briq::bench::Run();
  return 0;
}
