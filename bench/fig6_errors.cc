// Reproduces Figure 6 of the paper: typical error cases — (a) same-value
// collisions ("3.2" twice in a row with near-identical contexts), (b) high
// ambiguity ("$50" wholesale vs retail), (c) a scale missing from the
// table (billions shown bare). These documents are *expected* to produce
// errors; the bench reports what BriQ does with each mention.

#include <iostream>

#include "bench/harness.h"
#include "core/gt_matching.h"
#include "corpus/paper_examples.h"
#include "util/table_printer.h"

namespace briq::bench {
namespace {

void RunExample(const ExperimentSetup& setup, const corpus::Document& doc,
                const char* label, const char* expectation) {
  core::PreparedDocument prepared = core::PrepareDocument(doc, setup.config);
  core::DocumentAlignment alignment = setup.system->Align(prepared);
  auto matched = core::MatchGroundTruth(prepared);

  util::TablePrinter printer(std::string("Figure 6") + label + ": " + doc.id);
  printer.SetHeader({"mention", "gold target", "BriQ decision", "outcome"});
  for (const auto& m : matched) {
    std::string gold =
        m.table_idx >= 0
            ? prepared.table_mentions[m.table_idx].DebugString()
            : "(target not generated)";
    std::string decision = "(no alignment)";
    std::string outcome = "missed";
    if (m.text_idx >= 0) {
      if (const auto* d = alignment.ForTextMention(m.text_idx)) {
        decision = prepared.table_mentions[d->table_idx].DebugString();
        outcome = d->table_idx == m.table_idx ? "correct" : "WRONG cell";
      }
    }
    printer.AddRow({m.gt->surface, gold, decision, outcome});
  }
  std::cout << printer.ToString();
  std::cout << "paper's expectation: " << expectation << "\n\n";
}

void Run() {
  ExperimentSetup setup = BuildSetup(/*num_documents=*/300, /*seed=*/2024);
  RunExample(setup, corpus::Figure6aBedrooms(), "a",
             "'3.2' collides across columns with near-identical context; "
             "BriQ may pick the wrong one");
  RunExample(setup, corpus::Figure6bPonoko(), "b",
             "'$50' is ambiguous between wholesale and retail rows");
  RunExample(setup, corpus::Figure6cMutualFunds(), "c",
             "table omits the billions scale; only the unnormalized-value "
             "feature can bridge '$5.82 billion' to cell '5.82'");
}

}  // namespace
}  // namespace briq::bench

int main() {
  briq::bench::Run();
  return 0;
}
