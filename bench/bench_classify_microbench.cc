// Classification hot-path micro-benchmarks (google-benchmark): the
// pointer-chasing RandomForest vs the compiled ml::FlatForest, single-row
// and batched, plus pair featurization — the three costs that make up the
// `classify` stage (BENCH_throughput.json shows classify ~90% of align
// wall time). Wired into the build as `bench_classify_microbench` so the
// flat-vs-pointer ratio is measurable on any machine.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "bench/harness.h"
#include "core/features.h"
#include "ml/flat_forest.h"
#include "ml/random_forest.h"

namespace briq {
namespace {

/// A trained system + a prepared document with its feature rows
/// materialized: every stage-A-style pair (text mention x table mention)
/// featurized once, rows kept row-major for the batch entry points.
struct ClassifyFixture {
  bench::ExperimentSetup setup;
  std::vector<double> rows;  // num_pairs x num_features, row-major
  size_t num_pairs = 0;
  int num_features = 0;
  ml::FlatForest flat;

  ClassifyFixture() : setup(bench::BuildSetup(/*num_documents=*/120,
                                              /*seed=*/2024)) {
    const core::PreparedDocument& doc = setup.test.front();
    core::FeatureComputer features(doc, setup.config);
    num_features = features.NumActive();
    std::vector<double> row;
    for (size_t x = 0; x < doc.text_mentions.size(); ++x) {
      for (size_t t = 0; t < doc.table_mentions.size(); ++t) {
        features.Compute(x, t, &row);
        rows.insert(rows.end(), row.begin(), row.end());
        ++num_pairs;
      }
    }
    flat.Compile(setup.system->classifier().forest());
  }

  const double* row(size_t i) const {
    return rows.data() + i * static_cast<size_t>(num_features);
  }
};

ClassifyFixture& Fixture() {
  static ClassifyFixture* fixture = new ClassifyFixture();
  return *fixture;
}

/// Per-row positive probability through the pointer-based trees
/// (the pre-flat scoring path of MentionPairClassifier::Score).
void BM_PointerForest(benchmark::State& state) {
  ClassifyFixture& f = Fixture();
  const ml::RandomForest& forest = f.setup.system->classifier().forest();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.PredictPositiveProba(f.row(i)));
    i = (i + 1) % f.num_pairs;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointerForest);

/// Per-row positive probability through the compiled flat forest.
void BM_FlatForest(benchmark::State& state) {
  ClassifyFixture& f = Fixture();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.flat.PredictPositiveProba(f.row(i)));
    i = (i + 1) % f.num_pairs;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatForest);

/// All of one document's candidate rows in one batched call — the layout
/// MentionPairClassifier::ScoreBatch uses (tree-major over row tiles).
void BM_FlatForestBatch(benchmark::State& state) {
  ClassifyFixture& f = Fixture();
  std::vector<double> out(f.num_pairs);
  for (auto _ : state) {
    f.flat.PredictPositiveProbaBatch(
        f.rows.data(), f.num_pairs, static_cast<size_t>(f.num_features),
        out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.num_pairs));
}
BENCHMARK(BM_FlatForestBatch);

/// Pointer-forest equivalent of the batch above (row-at-a-time loop), so
/// the batch speedup is measured against the same work.
void BM_PointerForestBatch(benchmark::State& state) {
  ClassifyFixture& f = Fixture();
  const ml::RandomForest& forest = f.setup.system->classifier().forest();
  std::vector<double> out(f.num_pairs);
  for (auto _ : state) {
    for (size_t i = 0; i < f.num_pairs; ++i) {
      out[i] = forest.PredictPositiveProba(f.row(i));
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.num_pairs));
}
BENCHMARK(BM_PointerForestBatch);

/// Pair featurization (FeatureComputer::Compute) — the other half of the
/// classify stage; the candidate pre-index exists to avoid this work for
/// obviously incompatible pairs.
void BM_PairFeaturize(benchmark::State& state) {
  ClassifyFixture& f = Fixture();
  const core::PreparedDocument& doc = f.setup.test.front();
  core::FeatureComputer features(doc, f.setup.config);
  std::vector<double> row;
  size_t x = 0;
  size_t t = 0;
  for (auto _ : state) {
    features.Compute(x, t, &row);
    benchmark::DoNotOptimize(row.data());
    if (++t >= doc.table_mentions.size()) {
      t = 0;
      x = (x + 1) % doc.text_mentions.size();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PairFeaturize);

/// One document's candidate rows through FeatureComputer::ComputeBatch —
/// the text-mention-side work (context bag, cue scan, lowered surface) is
/// hoisted out of the per-pair loop.
void BM_PairFeaturizeBatch(benchmark::State& state) {
  ClassifyFixture& f = Fixture();
  const core::PreparedDocument& doc = f.setup.test.front();
  core::FeatureComputer features(doc, f.setup.config);
  const size_t num_table = doc.table_mentions.size();
  std::vector<size_t> tables(num_table);
  for (size_t t = 0; t < num_table; ++t) tables[t] = t;
  std::vector<double> rows(num_table *
                           static_cast<size_t>(features.NumActive()));
  size_t x = 0;
  for (auto _ : state) {
    features.ComputeBatch(x, tables.data(), tables.size(), rows.data());
    benchmark::DoNotOptimize(rows.data());
    x = (x + 1) % doc.text_mentions.size();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_table));
}
BENCHMARK(BM_PairFeaturizeBatch);

}  // namespace
}  // namespace briq

BENCHMARK_MAIN();
