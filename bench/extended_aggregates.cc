// The paper's "extended setting" (§II-A): the BriQ framework also handles
// average / min / max virtual cells, but "such sophisticated cases are
// very rare, and hence did not have any impact on the overall quality" —
// the evaluation therefore restricts to {sum, diff, pct, ratio}.
//
// This bench verifies that claim on our corpus: enabling avg/min/max
// (which the text never references) grows the candidate space but leaves
// quality essentially unchanged, at measurable extra cost.

#include <iostream>

#include "bench/harness.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace briq::bench {
namespace {

struct Variant {
  const char* label;
  bool average;
  bool min_max;
};

void Run() {
  util::TablePrinter printer(
      "Extended aggregation setting (paper §II-A): avg/min/max virtual "
      "cells");
  printer.SetHeader({"virtual-cell set", "table mentions/doc", "F1",
                     "align time"});

  const Variant variants[] = {
      {"sum+diff+pct+ratio (paper default)", false, false},
      {"+ average", true, false},
      {"+ min/max", false, true},
      {"+ average + min/max", true, true},
  };

  for (const Variant& v : variants) {
    core::BriqConfig config;
    config.virtual_cells.enable_average = v.average;
    config.virtual_cells.enable_min_max = v.min_max;
    ExperimentSetup setup = BuildSetup(/*num_documents=*/250, 2024, &config);

    size_t mentions = 0;
    for (const auto& d : setup.test) mentions += d.table_mentions.size();

    util::Stopwatch watch;
    core::EvalResult r = core::EvaluateCorpus(*setup.system, setup.test);
    double seconds = watch.ElapsedSeconds();

    printer.AddRow({v.label,
                    FmtCount(mentions / std::max<size_t>(setup.test.size(), 1)),
                    Fmt2(r.F1()), Fmt2(seconds) + " s"});
  }
  std::cout << printer.ToString();
  std::cout << "Expected shape: candidate space grows, F1 moves by noise "
               "only — the paper's\nrationale for restricting the default "
               "set to aggregations above 5% frequency.\n";
}

}  // namespace
}  // namespace briq::bench

int main() {
  briq::bench::Run();
  return 0;
}
