// Reproduces Table IV: results by mention type for the RWR-only baseline.
// Expected shape: better than RF on aggregates (graph structure helps sums
// and diffs) while percent/ratio remain hard.

#include "bench/by_type_common.h"

int main() {
  using namespace briq::bench;
  ExperimentSetup setup = BuildSetup(/*num_documents=*/400, /*seed=*/2024);
  briq::core::RwrOnlyAligner rwr(&setup.config);
  // Paper Table IV.
  ByTypePaper paper = {{0.61, 0.33, 0.09, 0.18, 0.57},
                       {0.52, 0.22, 0.43, 0.27, 0.57},
                       {0.56, 0.26, 0.15, 0.21, 0.57}};
  PrintByType(
      "Table IV: results by mention type, RWR baseline (paper values in "
      "parentheses)",
      rwr, setup.test, paper);
  return 0;
}
