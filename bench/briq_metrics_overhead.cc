// Asserts the observability overhead contract of DESIGN.md §5d: the
// instruments woven through the alignment pipeline must cost less than 2%
// of end-to-end throughput. Registered as the ctest `metrics_overhead`.
//
// Method: rather than racing a metrics-enabled binary against a
// metrics-disabled one (noisy on shared CI hardware), this measures the
// per-operation price of each instrument in a tight loop, counts the
// exact number of instrument events a real alignment workload fires (from
// registry snapshot deltas — histogram `count` deltas are exact Observe
// tallies), and bounds the total instrumentation time from above:
//
//   overhead <= sum(events_i * cost_i) / workload_wall_seconds
//
// The bound is deliberately conservative: every span is priced as a root
// span (ring mutex + tree move included), and every counter is assumed to
// tick once per document even though several never fire on this path.
//
// The continuous-telemetry flusher (DESIGN.md §5e) runs at its default 1s
// cadence during the measured workload; each flush that lands inside the
// window is priced at the full snapshot-serialize cost as if it ran on the
// workload core — an over-estimate, since the flusher has its own thread.
//
// Under -DBRIQ_NO_METRICS the instruments are no-ops, the snapshots are
// empty, the flusher is an inert stub, and the bound is trivially zero.

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "bench/harness.h"
#include "obs/access_log.h"
#include "obs/export.h"
#include "obs/flusher.h"
#include "obs/metrics.h"
#include "obs/rolling.h"
#include "obs/trace.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace briq::bench {
namespace {

constexpr double kOverheadBudget = 0.02;  // DESIGN.md §5d: < 2%

/// Seconds per call of `op`, measured over `iters` iterations.
template <typename Op>
double SecondsPerOp(Op op, int iters) {
  util::Stopwatch watch;
  for (int i = 0; i < iters; ++i) op();
  return watch.ElapsedSeconds() / iters;
}

uint64_t TotalHistogramObserves(const obs::MetricsSnapshot& before,
                                const obs::MetricsSnapshot& after) {
  uint64_t total = 0;
  for (const auto& [name, histogram] : after.histograms) {
    uint64_t prior = 0;
    auto it = before.histograms.find(name);
    if (it != before.histograms.end()) prior = it->second.count;
    total += histogram.count - prior;
  }
  return total;
}

int Run() {
  // --- Per-operation instrument prices -----------------------------------
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  obs::Counter* counter = registry.GetCounter("briq.bench.overhead_counter");
  obs::Histogram* histogram = registry.GetHistogram(
      "briq.bench.overhead_seconds", obs::DefaultLatencyBuckets());

  constexpr int kIters = 200000;
  const double counter_add = SecondsPerOp([&] { counter->Add(); }, kIters);
  const double observe = SecondsPerOp([&] { histogram->Observe(1e-4); },
                                      kIters);
  const double timer =
      SecondsPerOp([&] { obs::ScopedTimer t(histogram); }, kIters);
  // Root spans are the expensive case (TraceRing mutex + tree move); the
  // bound below prices every span, even cheap child spans, at this rate.
  const double span =
      SecondsPerOp([] { obs::ScopedSpan s("overhead-bench"); }, kIters / 4);
  // The classify stopwatch in AdaptiveFilter::Filter is two bare clock
  // reads per mention; a ScopedTimer (two reads + one Observe) bounds it.
  const double clock_pair = timer;

  // Serving-side request observability (DESIGN.md §5i), priced as if every
  // aligned document were one served request with the rolling SLO windows
  // and the access log enabled.
  obs::RollingHistogram rolling_histogram(obs::DefaultLatencyBuckets());
  obs::RollingCounter rolling_counter;
  const double rolling_record =
      SecondsPerOp([&] { rolling_histogram.Record(1e-4); }, kIters);
  const double rolling_add =
      SecondsPerOp([&] { rolling_counter.Add(); }, kIters);

  obs::AccessLogOptions log_options;
  log_options.path = std::filesystem::temp_directory_path() /
                     ("briq_overhead_" + std::to_string(::getpid()) +
                      ".jsonl");
  obs::AccessLog access_log(log_options);
  obs::AccessLogRecord log_record;
  log_record.trace_id = "overhead-bench-0123";
  log_record.method = "POST";
  log_record.path = "/align";
  log_record.status = 200;
  log_record.bytes_in = 512;
  log_record.bytes_out = 2048;
  log_record.wall_seconds = 1e-3;
  log_record.stage_seconds = {{"parse", 1e-4}, {"extract", 2e-4}};
  double access_write = 0.0;
  if (access_log.Open().ok()) {
    // Serialize + append + per-line flush: the dominant serving-side cost.
    access_write =
        SecondsPerOp([&] { access_log.Write(log_record); }, kIters / 20);
    access_log.Close();
  }
  std::filesystem::remove(log_options.path);

  // --- Real workload with exact event counts -----------------------------
  ExperimentSetup setup = BuildSetup(/*num_documents=*/80, /*seed=*/2024);
  std::vector<const core::PreparedDocument*> docs;
  for (const auto& d : setup.test) docs.push_back(&d);
  for (const auto& d : setup.validation) docs.push_back(&d);

  for (const auto* d : docs) setup.system->Align(*d);  // warm-up

  // Per-flush price on the now-populated registry: a full snapshot plus
  // compact JSON serialization, i.e. everything MetricsFlusher::FlushLocked
  // does besides the (line-buffered) file append.
  const double flush_price = SecondsPerOp(
      [&] { obs::MetricsToJson(registry.Snapshot()).Dump(-1); }, 50);

  // The flusher runs at its production default (1s interval) for the whole
  // measured region; only flushes landing inside the window are billed.
  obs::FlusherOptions flusher_options;
  flusher_options.interval_seconds = 1.0;
  flusher_options.docs_counter = "briq.align.documents";
  obs::MetricsFlusher flusher(flusher_options);
  const bool flusher_running = flusher.Start().ok();
  const size_t flushes_before = flusher.flush_count();

  const obs::MetricsSnapshot before = registry.Snapshot();
  util::Stopwatch watch;
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    for (const auto* d : docs) setup.system->Align(*d);
  }
  const double wall = watch.ElapsedSeconds();
  const obs::MetricsSnapshot after = registry.Snapshot();
  size_t flushes =
      flusher_running ? flusher.flush_count() - flushes_before : 0;
  flusher.Stop();
  // Short windows can see zero interval flushes; bill the expected 1/s
  // cadence anyway so the bound always carries the flusher's steady-state
  // price.
  if (flusher_running) {
    const size_t expected = static_cast<size_t>(wall) + 1;
    if (flushes < expected) flushes = expected;
  }

  // Exact and conservative event tallies for the measured region.
  const uint64_t observes = TotalHistogramObserves(before, after);
  uint64_t documents = 0;
  uint64_t mentions = 0;
  {
    auto it = after.counters.find("briq.align.documents");
    auto it0 = before.counters.find("briq.align.documents");
    if (it != after.counters.end()) {
      documents = it->second - (it0 != before.counters.end() ? it0->second : 0);
    }
    // One entropy observation per text mention (AdaptiveFilter::Filter).
    auto ith = after.histograms.find("briq.filter.classifier_entropy");
    auto ith0 = before.histograms.find("briq.filter.classifier_entropy");
    if (ith != after.histograms.end()) {
      mentions = ith->second.count -
                 (ith0 != before.histograms.end() ? ith0->second.count : 0);
    }
  }
  // Every counter assumed to tick once per document (several never do).
  const uint64_t counter_adds = after.counters.size() * documents;
  // Spans per aligned document: align_document, filter, resolve, plus the
  // classify leaf attach; prepare runs outside the measured loop here but
  // is priced in via the observes it would add when it does run.
  const uint64_t spans = 4 * documents;

  const double bound_seconds =
      static_cast<double>(observes) * observe +
      static_cast<double>(counter_adds) * counter_add +
      static_cast<double>(spans) * span +
      static_cast<double>(mentions) * clock_pair +
      // Stage timers: four ScopedTimers per document (align/filter/
      // resolve/classify) on top of the Observe already counted.
      static_cast<double>(4 * documents) * timer +
      // Serving-side per-request price: ServeStats::RecordRequest touches
      // two RouteWindows (route + aggregate), each one rolling-histogram
      // record and two rolling-counter adds, plus one access-log line.
      static_cast<double>(documents) *
          (2.0 * rolling_record + 4.0 * rolling_add + access_write) +
      // Flusher cadence, billed as if its snapshots ran on this core.
      static_cast<double>(flushes) * flush_price;
  const double fraction = wall > 0.0 ? bound_seconds / wall : 0.0;

  // --- Report -------------------------------------------------------------
  auto ns = [](double seconds) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", seconds * 1e9);
    return std::string(buf);
  };
  util::TablePrinter printer("observability overhead (upper bound)");
  printer.SetHeader({"quantity", "value"});
  printer.AddRow({"counter Add", ns(counter_add) + " ns"});
  printer.AddRow({"histogram Observe", ns(observe) + " ns"});
  printer.AddRow({"ScopedTimer", ns(timer) + " ns"});
  printer.AddRow({"root ScopedSpan", ns(span) + " ns"});
  printer.AddRow({"workload documents", FmtCount(documents)});
  printer.AddRow({"workload mentions", FmtCount(mentions)});
  printer.AddRow({"histogram observes", FmtCount(observes)});
  printer.AddRow({"rolling Record", ns(rolling_record) + " ns"});
  printer.AddRow({"rolling counter Add", ns(rolling_add) + " ns"});
  printer.AddRow({"access-log Write", ns(access_write) + " ns"});
  printer.AddRow({"flush (snapshot+json)", ns(flush_price) + " ns"});
  printer.AddRow({"flushes in window", FmtCount(flushes)});
  printer.AddRow({"workload wall", Fmt2(wall) + " s"});
  printer.AddRow({"instrumentation bound", Fmt2(bound_seconds * 1e3) + " ms"});
  printer.AddRow(
      {"overhead bound", Fmt2(fraction * 100) + "% (budget: 2%)"});
  std::printf("%s", printer.ToString().c_str());

  if (fraction >= kOverheadBudget) {
    std::fprintf(stderr,
                 "FAIL: instrumentation overhead bound %.3f%% exceeds the "
                 "%.0f%% budget (DESIGN.md §5d)\n",
                 fraction * 100, kOverheadBudget * 100);
    return 1;
  }
  std::printf("OK: overhead bound %.3f%% within the %.0f%% budget\n",
              fraction * 100, kOverheadBudget * 100);
  return 0;
}

}  // namespace
}  // namespace briq::bench

int main() { return briq::bench::Run(); }
