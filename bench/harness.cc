#include "bench/harness.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/json.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace briq::bench {

std::vector<const core::PreparedDocument*> ExperimentSetup::TrainPointers()
    const {
  std::vector<const core::PreparedDocument*> out;
  out.reserve(train.size());
  for (const auto& d : train) out.push_back(&d);
  return out;
}

std::vector<core::PreparedDocument> PrepareAll(
    const corpus::Corpus& corpus, const core::BriqConfig& config,
    int num_threads) {
  std::vector<core::PreparedDocument> out(corpus.size());
  util::ParallelFor(num_threads, 0, corpus.size(), /*grain=*/1,
                    [&](size_t lo, size_t hi) {
                      for (size_t i = lo; i < hi; ++i) {
                        out[i] =
                            core::PrepareDocument(corpus.documents[i], config);
                      }
                    });
  return out;
}

ExperimentSetup BuildSetup(size_t num_documents, uint64_t seed,
                           const core::BriqConfig* config) {
  ExperimentSetup setup;
  if (config != nullptr) setup.config = *config;

  corpus::CorpusOptions options;
  options.num_documents = num_documents;
  options.seed = seed;
  setup.corpus = corpus::GenerateCorpus(options);

  const size_t n = setup.corpus.size();
  const size_t train_end = n * 8 / 10;
  const size_t val_end = n * 9 / 10;
  std::vector<core::PreparedDocument> prepared =
      PrepareAll(setup.corpus, setup.config);
  for (size_t i = 0; i < n; ++i) {
    if (i < train_end) {
      setup.train.push_back(std::move(prepared[i]));
    } else if (i < val_end) {
      setup.validation.push_back(std::move(prepared[i]));
    } else {
      setup.test.push_back(std::move(prepared[i]));
    }
  }

  setup.system = std::make_unique<core::BriqSystem>(setup.config);
  BRIQ_CHECK_OK(setup.system->Train(setup.TrainPointers()));
  return setup;
}

std::string Fmt2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

std::string FmtCount(size_t v) {
  return util::WithThousandsSeparators(static_cast<int64_t>(v));
}

std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  }
  return "";
}

bool WriteBenchJson(const std::string& path,
                    const std::vector<BenchRecord>& records) {
  util::Json array = util::Json::Array();
  for (const BenchRecord& r : records) {
    util::Json obj = util::Json::Object();
    obj.Set("bench", r.bench);
    obj.Set("domain", r.domain);
    obj.Set("docs_per_min", r.docs_per_min);
    obj.Set("threads", r.threads);
    obj.Set("wall_seconds", r.wall_seconds);
    obj.Set("mode", r.mode.empty() ? "memory" : r.mode);
    obj.Set("flushes", r.flushes);
    obj.Set("flat_forest", r.flat_forest);
    obj.Set("candidate_index", r.candidate_index);
    if (!r.stage_seconds.empty()) {
      util::Json stages = util::Json::Object();
      for (const auto& [stage, seconds] : r.stage_seconds) {
        stages.Set(stage, seconds);
      }
      obj.Set("stages", std::move(stages));
      // Per-stage timers accumulate thread-seconds: with N workers the
      // cumulative values can exceed the row's wall time by up to Nx.
      // Emit the wall-normalized view (cumulative / threads) alongside so
      // multi-threaded rows are directly comparable to wall_seconds.
      if (r.threads > 1) {
        util::Json wall = util::Json::Object();
        for (const auto& [stage, seconds] : r.stage_seconds) {
          wall.Set(stage, seconds / static_cast<double>(r.threads));
        }
        obj.Set("stages_wall", std::move(wall));
      }
    }
    array.Append(std::move(obj));
  }
  std::ofstream out(path);
  if (!out) {
    BRIQ_LOG(Warning) << "cannot open " << path << " for --json output";
    return false;
  }
  out << array.Dump(/*indent=*/2) << "\n";
  return out.good();
}

}  // namespace briq::bench
