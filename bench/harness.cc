#include "bench/harness.h"

#include <cstdio>

#include "util/logging.h"
#include "util/string_util.h"

namespace briq::bench {

std::vector<const core::PreparedDocument*> ExperimentSetup::TrainPointers()
    const {
  std::vector<const core::PreparedDocument*> out;
  out.reserve(train.size());
  for (const auto& d : train) out.push_back(&d);
  return out;
}

std::vector<core::PreparedDocument> PrepareAll(
    const corpus::Corpus& corpus, const core::BriqConfig& config) {
  std::vector<core::PreparedDocument> out;
  out.reserve(corpus.size());
  for (const corpus::Document& d : corpus.documents) {
    out.push_back(core::PrepareDocument(d, config));
  }
  return out;
}

ExperimentSetup BuildSetup(size_t num_documents, uint64_t seed,
                           const core::BriqConfig* config) {
  ExperimentSetup setup;
  if (config != nullptr) setup.config = *config;

  corpus::CorpusOptions options;
  options.num_documents = num_documents;
  options.seed = seed;
  setup.corpus = corpus::GenerateCorpus(options);

  const size_t n = setup.corpus.size();
  const size_t train_end = n * 8 / 10;
  const size_t val_end = n * 9 / 10;
  for (size_t i = 0; i < n; ++i) {
    auto prepared = core::PrepareDocument(setup.corpus.documents[i],
                                          setup.config);
    if (i < train_end) {
      setup.train.push_back(std::move(prepared));
    } else if (i < val_end) {
      setup.validation.push_back(std::move(prepared));
    } else {
      setup.test.push_back(std::move(prepared));
    }
  }

  setup.system = std::make_unique<core::BriqSystem>(setup.config);
  BRIQ_CHECK_OK(setup.system->Train(setup.TrainPointers()));
  return setup;
}

std::string Fmt2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

std::string FmtCount(size_t v) {
  return util::WithThousandsSeparators(static_cast<int64_t>(v));
}

}  // namespace briq::bench
