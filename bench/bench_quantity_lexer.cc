// Microbenchmark of the CQE-grade quantity lexer (DESIGN.md §5k): raw
// LexNumber throughput, extraction throughput over legacy surfaces with
// extended forms off vs on (the overhead the flag buys), and extraction
// throughput over messy surfaces (scientific, fractions, ranges, ±,
// European separators, scaled currency).
//
//   bench_quantity_lexer [--quick] [--json BENCH_quantity_lexer.json]
//
// Reports surfaces/sec; the JSON rows reuse BenchRecord with
// docs_per_min = surfaces per minute, domain = workload name.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "quantity/quantity_lexer.h"
#include "quantity/quantity_parser.h"

namespace briq::bench {
namespace {

using Clock = std::chrono::steady_clock;

const std::vector<std::string>& LegacySurfaces() {
  static const auto& kSurfaces = *new std::vector<std::string>{
      "the company reported $232.8 Million in revenue",
      "a total of 1,144,716 votes were counted",
      "margins improved to 12.7% over the quarter",
      "roughly 36,900 patients enrolled by 2014",
      "the index fell 60 bps against the benchmark",
      "about 3.26 billion in annual sales",
      "twenty pounds of material per batch",
      "net income of $(9.49) Million was booked",
  };
  return kSurfaces;
}

const std::vector<std::string>& MessySurfaces() {
  static const auto& kSurfaces = *new std::vector<std::string>{
      "production reached 3.2e6 units this year",
      "an output of 4.839 × 10^7 was sustained",
      "revenues of $1.234.567 were booked",
      "the charge weighed 2 ¾ tonnes on arrival",
      "between 3–5 million tests were run",
      "a distance of 5 ± 1 km was covered",
      "hardware brought in 484 M$ over the year",
      "the residue came to 2750 kg in total",
  };
  return kSurfaces;
}

// Numbers-only inputs for the raw lexer loop.
const std::vector<std::string>& RawNumbers() {
  static const auto& kNumbers = *new std::vector<std::string>{
      "3.2e6",     "4 × 10^5", "1,234.56", "1.234.567", "2 3/4",
      "2¾",        "3–5",      "5 ± 1",    "-483.52",   "1144716",
  };
  return kNumbers;
}

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Runs `iters` extraction passes over `surfaces`, returning surfaces/sec.
double ExtractionRate(const std::vector<std::string>& surfaces,
                      const quantity::ExtractionOptions& opts, int iters) {
  size_t sink = 0;
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    for (const std::string& s : surfaces) {
      sink += quantity::ExtractQuantities(s, opts).size();
    }
  }
  const double secs = SecondsSince(t0);
  if (sink == 0) std::fprintf(stderr, "warning: no quantities extracted\n");
  return surfaces.size() * static_cast<double>(iters) / secs;
}

double RawLexRate(int iters) {
  quantity::LexOptions opts;
  size_t sink = 0;
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    for (const std::string& s : RawNumbers()) {
      auto r = quantity::LexNumber(s, 0, opts);
      sink += r.ok() ? static_cast<size_t>(r.value().end) : 0;
    }
  }
  const double secs = SecondsSince(t0);
  if (sink == 0) std::fprintf(stderr, "warning: nothing lexed\n");
  return RawNumbers().size() * static_cast<double>(iters) / secs;
}

int Run(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int iters = quick ? 2000 : 50000;

  quantity::ExtractionOptions legacy;
  quantity::ExtractionOptions extended;
  extended.extended_forms = true;

  struct Row {
    const char* name;
    double per_sec;
  };
  std::vector<Row> rows;
  rows.push_back({"lex_number_raw", RawLexRate(iters)});
  rows.push_back(
      {"extract_legacy_off", ExtractionRate(LegacySurfaces(), legacy, iters)});
  rows.push_back(
      {"extract_legacy_ext", ExtractionRate(LegacySurfaces(), extended, iters)});
  rows.push_back(
      {"extract_messy_ext", ExtractionRate(MessySurfaces(), extended, iters)});

  std::printf("%-20s %15s\n", "workload", "surfaces/sec");
  std::vector<BenchRecord> records;
  for (const Row& r : rows) {
    std::printf("%-20s %15.0f\n", r.name, r.per_sec);
    BenchRecord rec;
    rec.bench = "quantity_lexer";
    rec.domain = r.name;
    rec.docs_per_min = r.per_sec * 60.0;
    rec.threads = 1;
    rec.mode = "memory";
    records.push_back(rec);
  }
  // The extended flag must not tax the legacy language noticeably; flag a
  // regression loudly (no hard failure: shared CI boxes are noisy).
  const double off = rows[1].per_sec;
  const double on = rows[2].per_sec;
  if (on < 0.5 * off) {
    std::fprintf(stderr,
                 "warning: extended_forms slows legacy surfaces %.1fx\n",
                 off / on);
  }

  std::string json = JsonPathFromArgs(argc, argv);
  if (!json.empty() && !WriteBenchJson(json, records)) return 1;
  return 0;
}

}  // namespace
}  // namespace briq::bench

int main(int argc, char** argv) { return briq::bench::Run(argc, argv); }
