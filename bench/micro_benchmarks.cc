// Engineering micro-benchmarks (google-benchmark): quantity extraction,
// numeric parsing, feature computation, virtual-cell generation, random
// walks, Random-Forest inference, and string similarity. Not from the
// paper — these quantify the cost of each pipeline stage and back the
// design-choice ablations in DESIGN.md.

#include <benchmark/benchmark.h>

#include "core/features.h"
#include "core/pipeline.h"
#include "corpus/generator.h"
#include "graph/random_walk.h"
#include "ml/random_forest.h"
#include "quantity/numeric_literal.h"
#include "quantity/quantity_parser.h"
#include "table/virtual_cell.h"
#include "util/random.h"
#include "util/similarity.h"

namespace briq {
namespace {

const corpus::Document& SampleDocument() {
  static const corpus::Document& kDoc = *new corpus::Document([] {
    util::Rng rng(7);
    return corpus::GenerateDocument(corpus::GetDomainProfile("finance"),
                                    "bench-doc", &rng);
  }());
  return kDoc;
}

const core::BriqConfig& Config() {
  static const core::BriqConfig& kConfig = *new core::BriqConfig();
  return kConfig;
}

void BM_ParseNumericLiteral(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantity::ParseNumericLiteral("1,234,567.89"));
    benchmark::DoNotOptimize(quantity::ParseNumericLiteral("2,29,866"));
    benchmark::DoNotOptimize(quantity::ParseNumericLiteral("0,877"));
  }
}
BENCHMARK(BM_ParseNumericLiteral);

void BM_ExtractQuantities(benchmark::State& state) {
  const std::string text =
      "In 2013 revenue of $3.26 billion CDN was up $70 million CDN or 2% "
      "from the previous year. The net income of 2013 was $0.9 billion CDN. "
      "Compared to the revenue of 2012, it increased by 1.5%.";
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantity::ExtractQuantities(text));
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_ExtractQuantities);

void BM_JaroWinkler(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::JaroWinklerSimilarity("26.65$", "26.7$"));
    benchmark::DoNotOptimize(
        util::JaroWinklerSimilarity("1,144,716", "1,285,015"));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_VirtualCellGeneration(benchmark::State& state) {
  const corpus::Document& doc = SampleDocument();
  table::VirtualCellOptions options;
  for (auto _ : state) {
    for (const table::Table& t : doc.tables) {
      benchmark::DoNotOptimize(table::GenerateTableMentions(t, 0, options));
    }
  }
}
BENCHMARK(BM_VirtualCellGeneration);

void BM_PrepareDocument(benchmark::State& state) {
  const corpus::Document& doc = SampleDocument();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PrepareDocument(doc, Config()));
  }
}
BENCHMARK(BM_PrepareDocument);

void BM_FeatureVector(benchmark::State& state) {
  core::PreparedDocument prepared =
      core::PrepareDocument(SampleDocument(), Config());
  core::FeatureComputer features(prepared, Config());
  if (prepared.text_mentions.empty() || prepared.table_mentions.empty()) {
    state.SkipWithError("sample document has no mentions");
    return;
  }
  size_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        features.ComputeAll(0, t++ % prepared.table_mentions.size()));
  }
}
BENCHMARK(BM_FeatureVector);

void BM_RandomWalk(benchmark::State& state) {
  // A two-block graph shaped like a document graph.
  const int n = static_cast<int>(state.range(0));
  graph::Graph g(n);
  util::Rng rng(13);
  for (int i = 0; i < 3 * n; ++i) {
    int u = static_cast<int>(rng.UniformInt(n));
    int v = static_cast<int>(rng.UniformInt(n));
    if (u != v) g.AddEdge(u, v, rng.UniformDouble(0.1, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::RandomWalkWithRestart(g, 0));
  }
}
BENCHMARK(BM_RandomWalk)->Arg(64)->Arg(256)->Arg(1024);

void BM_ForestInference(benchmark::State& state) {
  util::Rng rng(29);
  ml::Dataset data(12);
  for (int i = 0; i < 2000; ++i) {
    std::vector<double> x(12);
    for (double& v : x) v = rng.UniformDouble();
    data.Add(x, x[0] + x[5] > 1.0 ? 1 : 0);
  }
  ml::RandomForest forest;
  ml::ForestConfig config;
  forest.Fit(data, config);
  std::vector<double> probe(12, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.PredictProba(probe.data()));
  }
}
BENCHMARK(BM_ForestInference);

}  // namespace
}  // namespace briq

BENCHMARK_MAIN();
