// Engineering micro-benchmarks (google-benchmark): quantity extraction,
// numeric parsing, feature computation, virtual-cell generation, random
// walks, Random-Forest inference, and string similarity. Not from the
// paper — these quantify the cost of each pipeline stage and back the
// design-choice ablations in DESIGN.md.

#include <benchmark/benchmark.h>

#include <atomic>

#include "bench/harness.h"
#include "core/features.h"
#include "core/pipeline.h"
#include "corpus/generator.h"
#include "graph/random_walk.h"
#include "ml/random_forest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "quantity/numeric_literal.h"
#include "quantity/quantity_parser.h"
#include "table/virtual_cell.h"
#include "util/random.h"
#include "util/similarity.h"
#include "util/thread_pool.h"

namespace briq {
namespace {

const corpus::Document& SampleDocument() {
  static const corpus::Document& kDoc = *new corpus::Document([] {
    util::Rng rng(7);
    return corpus::GenerateDocument(corpus::GetDomainProfile("finance"),
                                    "bench-doc", &rng);
  }());
  return kDoc;
}

const core::BriqConfig& Config() {
  static const core::BriqConfig& kConfig = *new core::BriqConfig();
  return kConfig;
}

void BM_ParseNumericLiteral(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantity::ParseNumericLiteral("1,234,567.89"));
    benchmark::DoNotOptimize(quantity::ParseNumericLiteral("2,29,866"));
    benchmark::DoNotOptimize(quantity::ParseNumericLiteral("0,877"));
  }
}
BENCHMARK(BM_ParseNumericLiteral);

void BM_ExtractQuantities(benchmark::State& state) {
  const std::string text =
      "In 2013 revenue of $3.26 billion CDN was up $70 million CDN or 2% "
      "from the previous year. The net income of 2013 was $0.9 billion CDN. "
      "Compared to the revenue of 2012, it increased by 1.5%.";
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantity::ExtractQuantities(text));
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_ExtractQuantities);

void BM_JaroWinkler(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::JaroWinklerSimilarity("26.65$", "26.7$"));
    benchmark::DoNotOptimize(
        util::JaroWinklerSimilarity("1,144,716", "1,285,015"));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_VirtualCellGeneration(benchmark::State& state) {
  const corpus::Document& doc = SampleDocument();
  table::VirtualCellOptions options;
  for (auto _ : state) {
    for (const table::Table& t : doc.tables) {
      benchmark::DoNotOptimize(table::GenerateTableMentions(t, 0, options));
    }
  }
}
BENCHMARK(BM_VirtualCellGeneration);

void BM_PrepareDocument(benchmark::State& state) {
  const corpus::Document& doc = SampleDocument();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PrepareDocument(doc, Config()));
  }
}
BENCHMARK(BM_PrepareDocument);

void BM_FeatureVector(benchmark::State& state) {
  core::PreparedDocument prepared =
      core::PrepareDocument(SampleDocument(), Config());
  core::FeatureComputer features(prepared, Config());
  if (prepared.text_mentions.empty() || prepared.table_mentions.empty()) {
    state.SkipWithError("sample document has no mentions");
    return;
  }
  size_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        features.ComputeAll(0, t++ % prepared.table_mentions.size()));
  }
}
BENCHMARK(BM_FeatureVector);

void BM_RandomWalk(benchmark::State& state) {
  // A two-block graph shaped like a document graph.
  const int n = static_cast<int>(state.range(0));
  graph::Graph g(n);
  util::Rng rng(13);
  for (int i = 0; i < 3 * n; ++i) {
    int u = static_cast<int>(rng.UniformInt(n));
    int v = static_cast<int>(rng.UniformInt(n));
    if (u != v) g.AddEdge(u, v, rng.UniformDouble(0.1, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::RandomWalkWithRestart(g, 0));
  }
}
BENCHMARK(BM_RandomWalk)->Arg(64)->Arg(256)->Arg(1024);

ml::Dataset SyntheticDataset() {
  util::Rng rng(29);
  ml::Dataset data(12);
  for (int i = 0; i < 2000; ++i) {
    std::vector<double> x(12);
    for (double& v : x) v = rng.UniformDouble();
    data.Add(x, x[0] + x[5] > 1.0 ? 1 : 0);
  }
  return data;
}

void BM_ForestInference(benchmark::State& state) {
  ml::Dataset data = SyntheticDataset();
  ml::RandomForest forest;
  ml::ForestConfig config;
  forest.Fit(data, config);
  std::vector<double> probe(12, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.PredictProba(probe.data()));
  }
}
BENCHMARK(BM_ForestInference);

// The allocation-free scoring path: averaged probabilities accumulate into
// a caller-owned buffer (compare against BM_ForestInference to see the
// per-call vector cost this removes).
void BM_ForestInferenceNoAlloc(benchmark::State& state) {
  ml::Dataset data = SyntheticDataset();
  ml::RandomForest forest;
  ml::ForestConfig config;
  forest.Fit(data, config);
  std::vector<double> probe(12, 0.4);
  double out[2];
  for (auto _ : state) {
    forest.PredictProba(probe.data(), out);
    benchmark::DoNotOptimize(out[1]);
  }
}
BENCHMARK(BM_ForestInferenceNoAlloc);

// Forest training across threads; per-tree seeding keeps the result
// bit-identical to the sequential fit.
void BM_ForestFit(benchmark::State& state) {
  ml::Dataset data = SyntheticDataset();
  ml::ForestConfig config;
  config.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ml::RandomForest forest;
    forest.Fit(data, config);
    benchmark::DoNotOptimize(forest.num_trees());
  }
}
BENCHMARK(BM_ForestFit)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// Pool dispatch overhead on near-trivial chunks.
void BM_ThreadPoolParallelFor(benchmark::State& state) {
  util::ThreadPool pool(static_cast<int>(state.range(0)));
  std::vector<double> values(1 << 14, 1.0);
  std::atomic<double> sink{0.0};
  for (auto _ : state) {
    pool.ParallelFor(0, values.size(), /*grain=*/1024,
                     [&](size_t lo, size_t hi) {
                       double acc = 0.0;
                       for (size_t i = lo; i < hi; ++i) acc += values[i];
                       sink.store(acc, std::memory_order_relaxed);
                     });
  }
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_ThreadPoolParallelFor)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// End-to-end batch alignment at different worker counts (the Table VIII
// parallel path). Setup (corpus + training) is amortized across runs.
void BM_AlignBatch(benchmark::State& state) {
  static const bench::ExperimentSetup& setup =
      *new bench::ExperimentSetup(bench::BuildSetup(/*num_documents=*/80,
                                                    /*seed=*/2024));
  std::vector<const core::PreparedDocument*> batch;
  for (const auto& d : setup.test) batch.push_back(&d);
  for (const auto& d : setup.validation) batch.push_back(&d);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.system->AlignBatch(batch, threads));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_AlignBatch)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// --- Observability instrument costs (the DESIGN.md §5d overhead budget;
// briq_metrics_overhead asserts the end-to-end <2% bound, these isolate
// the per-operation prices). Under -DBRIQ_NO_METRICS they measure the
// compiled-out no-ops.

void BM_MetricsCounterAdd(benchmark::State& state) {
  obs::Counter* counter =
      obs::MetricRegistry::Global().GetCounter("briq.bench.counter");
  for (auto _ : state) {
    counter->Add();
  }
}
BENCHMARK(BM_MetricsCounterAdd);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  obs::Histogram* histogram = obs::MetricRegistry::Global().GetHistogram(
      "briq.bench.histogram_seconds", obs::DefaultLatencyBuckets());
  double v = 0.0;
  for (auto _ : state) {
    histogram->Observe(v);
    v += 1e-6;
  }
}
BENCHMARK(BM_MetricsHistogramObserve);

void BM_MetricsScopedTimer(benchmark::State& state) {
  obs::Histogram* histogram = obs::MetricRegistry::Global().GetHistogram(
      "briq.bench.timer_seconds", obs::DefaultLatencyBuckets());
  for (auto _ : state) {
    obs::ScopedTimer timer(histogram);
    benchmark::DoNotOptimize(histogram);
  }
}
BENCHMARK(BM_MetricsScopedTimer);

void BM_MetricsScopedSpan(benchmark::State& state) {
  for (auto _ : state) {
    obs::ScopedSpan span("bench");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_MetricsScopedSpan);

// Counter contention: all threads hammer one counter; the per-thread
// shards keep this scaling flat instead of collapsing on one cache line.
void BM_MetricsCounterAddContended(benchmark::State& state) {
  static obs::Counter* counter =
      obs::MetricRegistry::Global().GetCounter("briq.bench.contended");
  for (auto _ : state) {
    counter->Add();
  }
}
BENCHMARK(BM_MetricsCounterAddContended)->Threads(1)->Threads(4)->Threads(8);

}  // namespace
}  // namespace briq

BENCHMARK_MAIN();
