// Reproduces Table VIII: BriQ inference throughput (documents per minute)
// by thematic domain, on a scaled-down tableL corpus, plus the BriQ vs
// RWR-only speed comparison (the paper reports BriQ ~30x faster because
// RWR-only runs the walk over the unpruned pair space).
//
// The paper reached its aggregate 2,478 docs/min on a 10-executor Spark
// cluster; this bench reports both the single-core rate (the row whose
// per-domain shape is comparable to the paper: sports slowest, BriQ >>
// RWR-only) and the multi-threaded rate via Aligner::AlignBatch, which is
// this reproduction's analogue of the paper's cluster parallelism.
//
// Flags:
//   --threads <n>      worker count for the batch rows (default 8)
//   --json <path>      machine-readable {bench, domain, docs_per_min,
//                      threads, wall_seconds, mode} records for cross-PR
//                      tracking
//   --stream           also measure the sharded streaming ingestion path
//                      (corpus::ShardWriter/Reader + core::StreamingAligner);
//                      implied by --json so the perf trajectory always
//                      records both the in-memory and streaming rates
//   --train            also measure out-of-core training (shard read +
//                      prepare + sample spill + forest fit through
//                      core::StreamingTrainer); implied by --json, recorded
//                      as mode "train"
//   --fleet            also measure the multi-process fleet path (briq_tool
//                      fleet align driving --workers worker processes with
//                      push telemetry, DESIGN.md §5j); implied by --json,
//                      recorded as mode "fleet"
//   --workers <n>      fleet worker-process count (default 3)
//   --briq-tool <path> briq_tool binary for the fleet rows (default: the
//                      examples/ sibling of this bench in the build tree)
//   --shard-size <n>   documents per shard for the streaming rows
//                      (default 32)
//   --metrics-interval <sec>
//                      run a background metrics flusher (snapshot-only, no
//                      file) at this cadence while measuring, and record
//                      the number of flushes per row — the throughput
//                      trajectory then shows whether a rate was taken with
//                      the continuous-telemetry cadence active
//
// The streaming rows measure end-to-end ingestion — JSONL parse + prepare
// + align from disk shards in bounded memory — while the in-memory rows
// time alignment of pre-prepared documents only, which is why the two
// modes are recorded separately in BENCH_throughput.json.

#include <sys/resource.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/streaming_aligner.h"
#include "core/streaming_trainer.h"
#include "corpus/shard_io.h"
#include "obs/export.h"
#include "obs/flusher.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace briq::bench {
namespace {

struct PaperRow {
  const char* domain;
  int docs_per_min;
};

constexpr PaperRow kPaper[] = {
    {"environment", 2935}, {"finance", 5029}, {"health", 4604},
    {"politics", 6223},    {"sports", 863},   {"others", 2588},
};

// Streams the corpus that the in-memory rows measured, but from disk
// shards through the bounded-memory pipeline, and appends "stream"-mode
// records so BENCH_throughput.json tracks both rates side by side.
void RunStreaming(const ExperimentSetup& setup, const corpus::Corpus& corpus,
                  int num_threads, size_t shard_size,
                  obs::MetricsFlusher* flusher,
                  std::vector<BenchRecord>* records) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "briq_table8_shards";
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);

  auto paths =
      corpus::WriteCorpusShards(corpus, dir.string(), "corpus", shard_size);
  if (!paths.ok()) {
    std::cerr << "streaming bench skipped: " << paths.status().ToString()
              << "\n";
    return;
  }
  std::cout << "\nstreaming ingestion (" << corpus.size() << " docs as "
            << paths->size() << " shards of <= " << shard_size
            << " docs; rate includes shard parse + prepare + align):\n";

  for (int threads : {1, num_threads}) {
    core::StreamingOptions options;
    options.num_threads = threads;
    size_t streamed = 0;
    const size_t flushes_before =
        flusher != nullptr ? flusher->flush_count() : 0;
    const obs::MetricsSnapshot before =
        obs::MetricRegistry::Global().Snapshot();
    util::Stopwatch watch;
    util::Status status = core::AlignShardedCorpus(
        *setup.system, setup.config, dir.string(), "corpus", options,
        [&streamed](size_t, const corpus::Document&,
                    const core::DocumentAlignment&) { ++streamed; });
    const double seconds = watch.ElapsedSeconds();
    if (!status.ok()) {
      std::cerr << "streaming bench failed: " << status.ToString() << "\n";
      break;
    }
    const double per_min = static_cast<double>(streamed) / seconds * 60;
    std::cout << "  " << threads << " thread(s): " << FmtCount(streamed)
              << " docs in " << Fmt2(seconds) << " s  ("
              << FmtCount(static_cast<size_t>(per_min)) << " docs/min)\n";
    BenchRecord record{"table8_throughput", "total", per_min, threads,
                       seconds, "stream"};
    record.stage_seconds = obs::AlignStageSecondsDelta(
        before, obs::MetricRegistry::Global().Snapshot());
    if (flusher != nullptr) {
      record.flushes = flusher->flush_count() - flushes_before;
    }
    records->push_back(std::move(record));
    if (threads == num_threads) break;  // avoid a duplicate 1-thread row
  }
  fs::remove_all(dir, ec);
}

// Measures the out-of-core training path end to end: shard read + prepare
// + sample emission spilled to disk + forest fits off the spill files.
// Appends "train"-mode records, one per thread count. Peak RSS is read via
// getrusage after each run as a coarse memory note; it is process-wide and
// monotone (the in-memory benches above inflate it), so it bounds — not
// isolates — the trainer's own footprint.
void RunTraining(int num_threads, size_t shard_size,
                 obs::MetricsFlusher* flusher,
                 std::vector<BenchRecord>* records) {
  namespace fs = std::filesystem;
  corpus::CorpusOptions options;
  options.num_documents = 150;
  options.seed = 31337;
  corpus::Corpus corpus = corpus::GenerateCorpus(options);

  const fs::path dir = fs::temp_directory_path() / "briq_table8_train";
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir / "shards");
  auto paths = corpus::WriteCorpusShards(corpus, (dir / "shards").string(),
                                         "corpus", shard_size);
  if (!paths.ok()) {
    std::cerr << "training bench skipped: " << paths.status().ToString()
              << "\n";
    return;
  }
  std::cout << "\nout-of-core training (" << corpus.size() << " docs as "
            << paths->size() << " shards of <= " << shard_size
            << " docs; rate includes shard parse + prepare + sample spill + "
            << "forest fit):\n";

  for (int threads : {1, num_threads}) {
    fs::create_directories(dir / "spill");
    core::StreamingTrainOptions train_options;
    train_options.num_threads = threads;
    train_options.spill_dir = (dir / "spill").string();
    core::BriqConfig config;
    core::BriqSystem system(config);
    const size_t flushes_before =
        flusher != nullptr ? flusher->flush_count() : 0;
    util::Stopwatch watch;
    util::Status status = core::TrainOnShardedCorpus(
        &system, (dir / "shards").string(), "corpus", train_options);
    const double seconds = watch.ElapsedSeconds();
    if (!status.ok()) {
      std::cerr << "training bench failed: " << status.ToString() << "\n";
      break;
    }
    const double per_min = static_cast<double>(corpus.size()) / seconds * 60;
    rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    std::cout << "  " << threads << " thread(s): " << FmtCount(corpus.size())
              << " docs in " << Fmt2(seconds) << " s  ("
              << FmtCount(static_cast<size_t>(per_min))
              << " docs/min; process peak RSS " << usage.ru_maxrss
              << " KiB — upper bound, the in-memory rows above share it)\n";
    BenchRecord record{"table8_throughput", "total", per_min, threads,
                       seconds, "train"};
    if (flusher != nullptr) {
      record.flushes = flusher->flush_count() - flushes_before;
    }
    records->push_back(std::move(record));
    fs::remove_all(dir / "spill", ec);
    if (threads == num_threads) break;  // avoid a duplicate 1-thread row
  }
  fs::remove_all(dir, ec);
}

// Measures the multi-process fleet path end to end (DESIGN.md §5j): the
// trained model is persisted, the corpus sharded, and `briq_tool fleet
// align --workers N` driven as a subprocess. The wall clock therefore
// includes worker fork/exec, per-worker model load, push telemetry, and
// the driver-side merge — the honest cost of fanning out. Appends a
// "fleet" record whose threads field carries the worker count.
void RunFleet(const ExperimentSetup& setup, const corpus::Corpus& corpus,
              int num_workers, size_t shard_size,
              const std::string& briq_tool,
              std::vector<BenchRecord>* records) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (briq_tool.empty() || !fs::exists(briq_tool, ec)) {
    std::cerr << "fleet bench skipped: briq_tool binary not found"
              << (briq_tool.empty() ? std::string()
                                    : std::string(" at ") + briq_tool)
              << " (pass --briq-tool <path>)\n";
    return;
  }
  const fs::path dir = fs::temp_directory_path() / "briq_table8_fleet";
  fs::remove_all(dir, ec);
  fs::create_directories(dir / "shards");

  auto paths = corpus::WriteCorpusShards(corpus, (dir / "shards").string(),
                                         "corpus", shard_size);
  util::Status saved = setup.system->SaveModel((dir / "model.briq").string());
  if (!paths.ok() || !saved.ok()) {
    std::cerr << "fleet bench skipped: "
              << (paths.ok() ? saved : paths.status()).ToString() << "\n";
    fs::remove_all(dir, ec);
    return;
  }
  std::cout << "\nfleet alignment (" << corpus.size() << " docs as "
            << paths->size() << " shards across " << num_workers
            << " worker processes; rate includes fork/exec + model load + "
            << "push telemetry + merge):\n";

  const std::string command =
      "'" + briq_tool + "' fleet align '" + (dir / "shards").string() +
      "' --workers " + std::to_string(num_workers) + " --model '" +
      (dir / "model.briq").string() + "' > '" + (dir / "fleet.log").string() +
      "' 2>&1";
  util::Stopwatch watch;
  const int rc = std::system(command.c_str());
  const double seconds = watch.ElapsedSeconds();
  if (rc != 0) {
    std::cerr << "fleet bench failed: briq_tool exited with " << rc
              << " (log: " << (dir / "fleet.log").string() << ")\n";
    return;  // keep the log for inspection
  }
  const double per_min = static_cast<double>(corpus.size()) / seconds * 60;
  std::cout << "  " << num_workers
            << " worker(s): " << FmtCount(corpus.size()) << " docs in "
            << Fmt2(seconds) << " s  ("
            << FmtCount(static_cast<size_t>(per_min)) << " docs/min)\n";
  BenchRecord record{"table8_throughput", "total", per_min, num_workers,
                     seconds, "fleet"};
  records->push_back(std::move(record));
  fs::remove_all(dir, ec);
}

void Run(int num_threads, const std::string& json_path, bool stream,
         bool train, bool fleet, int num_workers, size_t shard_size,
         double metrics_interval, const std::string& briq_tool) {
  // Train once on a mixed corpus.
  ExperimentSetup setup = BuildSetup(/*num_documents=*/250, /*seed=*/2024);
  std::vector<BenchRecord> records;
  corpus::Corpus streaming_corpus;  // per-domain docs, reused by --stream

  // One flusher spans the whole bench (snapshot cadence only, no file);
  // each row records how many flushes landed inside its measured window.
  std::unique_ptr<obs::MetricsFlusher> flusher;
  if (metrics_interval > 0.0) {
    obs::FlusherOptions flusher_options;
    flusher_options.interval_seconds = metrics_interval;
    flusher_options.docs_counter = "briq.align.documents";
    flusher = std::make_unique<obs::MetricsFlusher>(flusher_options);
    const util::Status status = flusher->Start();
    if (!status.ok()) {
      std::cerr << "metrics flusher disabled: " << status.ToString() << "\n";
      flusher.reset();
    }
  }
  const auto flushes_now = [&flusher]() -> size_t {
    return flusher != nullptr ? flusher->flush_count() : 0;
  };

  util::TablePrinter printer(
      "Table VIII: BriQ throughput by domain (single core vs " +
      std::to_string(num_threads) +
      " threads; paper numbers —\nfrom a 10-executor Spark cluster — in "
      "parentheses for shape comparison)");
  printer.SetHeader({"domain", "docs", "mentions", "docs/min@1",
                     "docs/min@" + std::to_string(num_threads),
                     "(paper docs/min)"});

  const size_t kDocsPerDomain = 120;
  double total_docs = 0;
  double total_seconds_1 = 0;
  double total_seconds_n = 0;
  const size_t flushes_at_loop_start = flushes_now();
  for (const PaperRow& row : kPaper) {
    corpus::CorpusOptions options;
    options.num_documents = kDocsPerDomain;
    options.seed = 31337;
    options.domain_weights = {{row.domain, 1.0}};
    corpus::Corpus domain_corpus = corpus::GenerateCorpus(options);
    std::vector<core::PreparedDocument> docs =
        PrepareAll(domain_corpus, setup.config);

    size_t mentions = 0;
    std::vector<const core::PreparedDocument*> batch;
    batch.reserve(docs.size());
    for (const auto& d : docs) {
      mentions += d.text_mentions.size();
      batch.push_back(&d);
    }

    // Single-core row (paper-shape comparison). The metric snapshots
    // around each timed region feed the per-stage breakdown ("stages")
    // embedded in the JSON records.
    const size_t flushes_before_1 = flushes_now();
    const obs::MetricsSnapshot before_1 =
        obs::MetricRegistry::Global().Snapshot();
    util::Stopwatch watch;
    for (const auto& d : docs) setup.system->Align(d);
    const double seconds_1 = watch.ElapsedSeconds();
    const obs::MetricsSnapshot after_1 =
        obs::MetricRegistry::Global().Snapshot();
    const size_t flushes_before_n = flushes_now();

    // N-thread row over the identical batch.
    watch.Reset();
    setup.system->AlignBatch(batch, num_threads);
    const double seconds_n = watch.ElapsedSeconds();
    const obs::MetricsSnapshot after_n =
        obs::MetricRegistry::Global().Snapshot();
    const size_t flushes_after_n = flushes_now();

    total_docs += static_cast<double>(docs.size());
    total_seconds_1 += seconds_1;
    total_seconds_n += seconds_n;

    const double per_min_1 = static_cast<double>(docs.size()) / seconds_1 * 60;
    const double per_min_n = static_cast<double>(docs.size()) / seconds_n * 60;
    printer.AddRow({row.domain, FmtCount(docs.size()), FmtCount(mentions),
                    FmtCount(static_cast<size_t>(per_min_1)),
                    FmtCount(static_cast<size_t>(per_min_n)),
                    "(" + FmtCount(row.docs_per_min) + ")"});
    BenchRecord record_1{"table8_throughput", row.domain, per_min_1, 1,
                         seconds_1};
    record_1.stage_seconds = obs::AlignStageSecondsDelta(before_1, after_1);
    record_1.flushes = flushes_before_n - flushes_before_1;
    records.push_back(std::move(record_1));
    BenchRecord record_n{"table8_throughput", row.domain, per_min_n,
                         num_threads, seconds_n};
    record_n.stage_seconds = obs::AlignStageSecondsDelta(after_1, after_n);
    record_n.flushes = flushes_after_n - flushes_before_n;
    records.push_back(std::move(record_n));

    // The prepared docs die with this iteration; keep the raw documents
    // so the streaming/fleet rows below measure the identical corpus.
    if (stream || fleet) {
      for (corpus::Document& d : domain_corpus.documents) {
        streaming_corpus.documents.push_back(std::move(d));
      }
    }
  }
  const double total_per_min_1 = total_docs / total_seconds_1 * 60.0;
  const double total_per_min_n = total_docs / total_seconds_n * 60.0;
  printer.AddSeparator();
  printer.AddRow({"total", FmtCount(static_cast<size_t>(total_docs)), "",
                  FmtCount(static_cast<size_t>(total_per_min_1)),
                  FmtCount(static_cast<size_t>(total_per_min_n)),
                  "(2,478)"});
  std::cout << printer.ToString() << std::endl;
  std::cout << "aggregate speedup at " << num_threads
            << " threads: " << Fmt2(total_per_min_n / total_per_min_1)
            << "x\n";
  BenchRecord total_1{"table8_throughput", "total", total_per_min_1, 1,
                      total_seconds_1};
  BenchRecord total_n{"table8_throughput", "total", total_per_min_n,
                      num_threads, total_seconds_n};
  // Totals span all domains, so both rows share the loop-wide flush count.
  total_1.flushes = flushes_now() - flushes_at_loop_start;
  total_n.flushes = total_1.flushes;
  records.push_back(std::move(total_1));
  records.push_back(std::move(total_n));

  if (stream) {
    RunStreaming(setup, streaming_corpus, num_threads, shard_size,
                 flusher.get(), &records);
  }
  if (train) {
    RunTraining(num_threads, shard_size, flusher.get(), &records);
  }
  if (fleet) {
    RunFleet(setup, streaming_corpus, num_workers, shard_size, briq_tool,
             &records);
  }

  // BriQ vs RWR-only speed (paper: 30x, RWR at 76 docs/min).
  {
    corpus::CorpusOptions options;
    options.num_documents = 40;
    options.seed = 5150;
    corpus::Corpus small = corpus::GenerateCorpus(options);
    std::vector<core::PreparedDocument> docs =
        PrepareAll(small, setup.config);

    util::Stopwatch watch;
    for (const auto& d : docs) setup.system->Align(d);
    double briq_rate = docs.size() / watch.ElapsedSeconds() * 60.0;

    core::RwrOnlyAligner rwr(&setup.config);
    watch.Reset();
    for (const auto& d : docs) rwr.Align(d);
    double rwr_rate = docs.size() / watch.ElapsedSeconds() * 60.0;

    std::cout << "BriQ vs RWR-only speedup: " << Fmt2(briq_rate / rwr_rate)
              << "x  (paper: ~30x; RWR-only at 76 docs/min)\n";
  }

  if (flusher != nullptr) flusher->Stop();

  // Stamp every row with the classification fast-path flags it ran under
  // (the training rows use a fresh default config with the same values).
  for (BenchRecord& r : records) {
    r.flat_forest = setup.config.flat_forest;
    r.candidate_index = setup.config.candidate_index;
  }

  if (!json_path.empty() && WriteBenchJson(json_path, records)) {
    std::cout << "wrote " << records.size() << " records to " << json_path
              << "\n";
  }
}

}  // namespace
}  // namespace briq::bench

int main(int argc, char** argv) {
  int num_threads = 8;
  int num_workers = 3;
  size_t shard_size = 32;
  bool stream = false;
  bool train = false;
  bool fleet = false;
  double metrics_interval = 0.0;
  std::string briq_tool;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      num_threads = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      num_workers = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--shard-size") == 0 && i + 1 < argc) {
      shard_size = static_cast<size_t>(std::atol(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--metrics-interval") == 0 &&
               i + 1 < argc) {
      metrics_interval = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--briq-tool") == 0 && i + 1 < argc) {
      briq_tool = argv[i + 1];
    } else if (std::strcmp(argv[i], "--stream") == 0) {
      stream = true;
    } else if (std::strcmp(argv[i], "--train") == 0) {
      train = true;
    } else if (std::strcmp(argv[i], "--fleet") == 0) {
      fleet = true;
    }
  }
  if (num_threads < 1) num_threads = 1;
  if (num_workers < 1) num_workers = 1;
  if (shard_size < 1) shard_size = 1;
  if (metrics_interval < 0.0) metrics_interval = 0.0;
  if (briq_tool.empty()) {
    // briq_tool normally sits next to this bench in the build tree
    // (build/bench/table8_throughput vs build/examples/briq_tool).
    std::error_code ec;
    const std::filesystem::path self =
        std::filesystem::read_symlink("/proc/self/exe", ec);
    if (!ec) {
      briq_tool =
          (self.parent_path().parent_path() / "examples" / "briq_tool")
              .string();
    }
  }
  const std::string json_path = briq::bench::JsonPathFromArgs(argc, argv);
  // --json implies the streaming, training, and fleet rows: the tracked
  // perf trajectory should always contain every mode.
  if (!json_path.empty()) {
    stream = true;
    train = true;
    fleet = true;
  }
  briq::bench::Run(num_threads, json_path, stream, train, fleet, num_workers,
                   shard_size, metrics_interval, briq_tool);
  return 0;
}
