// Reproduces Table VIII: BriQ inference throughput (documents per minute)
// by thematic domain, on a scaled-down tableL corpus, plus the BriQ vs
// RWR-only speed comparison (the paper reports BriQ ~30x faster because
// RWR-only runs the walk over the unpruned pair space).
//
// Absolute numbers are not comparable to the paper's 10-executor Spark
// cluster; the shape to verify is (a) sports slowest (largest tables, most
// virtual cells), and (b) BriQ >> RWR-only throughput.

#include <iostream>

#include "bench/harness.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace briq::bench {
namespace {

struct PaperRow {
  const char* domain;
  int docs_per_min;
};

constexpr PaperRow kPaper[] = {
    {"environment", 2935}, {"finance", 5029}, {"health", 4604},
    {"politics", 6223},    {"sports", 863},   {"others", 2588},
};

void Run() {
  // Train once on a mixed corpus.
  ExperimentSetup setup = BuildSetup(/*num_documents=*/250, /*seed=*/2024);

  util::TablePrinter printer(
      "Table VIII: BriQ throughput by domain (single core; paper numbers —\n"
      "from a 10-executor Spark cluster — in parentheses for shape "
      "comparison)");
  printer.SetHeader(
      {"domain", "docs", "mentions", "docs/min", "(paper docs/min)"});

  const size_t kDocsPerDomain = 120;
  double total_docs = 0;
  double total_seconds = 0;
  for (const PaperRow& row : kPaper) {
    corpus::CorpusOptions options;
    options.num_documents = kDocsPerDomain;
    options.seed = 31337;
    options.domain_weights = {{row.domain, 1.0}};
    corpus::Corpus domain_corpus = corpus::GenerateCorpus(options);
    std::vector<core::PreparedDocument> docs =
        PrepareAll(domain_corpus, setup.config);

    size_t mentions = 0;
    for (const auto& d : docs) mentions += d.text_mentions.size();

    util::Stopwatch watch;
    for (const auto& d : docs) setup.system->Align(d);
    double seconds = watch.ElapsedSeconds();
    total_docs += static_cast<double>(docs.size());
    total_seconds += seconds;

    double per_min = static_cast<double>(docs.size()) / seconds * 60.0;
    printer.AddRow({row.domain, FmtCount(docs.size()), FmtCount(mentions),
                    FmtCount(static_cast<size_t>(per_min)),
                    "(" + FmtCount(row.docs_per_min) + ")"});
  }
  printer.AddSeparator();
  printer.AddRow({"total", FmtCount(static_cast<size_t>(total_docs)), "",
                  FmtCount(static_cast<size_t>(total_docs / total_seconds *
                                               60.0)),
                  "(2,478)"});
  std::cout << printer.ToString() << std::endl;

  // BriQ vs RWR-only speed (paper: 30x, RWR at 76 docs/min).
  {
    corpus::CorpusOptions options;
    options.num_documents = 40;
    options.seed = 5150;
    corpus::Corpus small = corpus::GenerateCorpus(options);
    std::vector<core::PreparedDocument> docs =
        PrepareAll(small, setup.config);

    util::Stopwatch watch;
    for (const auto& d : docs) setup.system->Align(d);
    double briq_rate = docs.size() / watch.ElapsedSeconds() * 60.0;

    core::RwrOnlyAligner rwr(&setup.config);
    watch.Reset();
    for (const auto& d : docs) rwr.Align(d);
    double rwr_rate = docs.size() / watch.ElapsedSeconds() * 60.0;

    std::cout << "BriQ vs RWR-only speedup: " << Fmt2(briq_rate / rwr_rate)
              << "x  (paper: ~30x; RWR-only at 76 docs/min)\n";
  }
}

}  // namespace
}  // namespace briq::bench

int main() {
  briq::bench::Run();
  return 0;
}
