// Reproduces Table VI: selectivity of the adaptive filter (fraction of
// mention pairs retained) and post-filter recall of ground-truth pairs,
// by mention type. Expected shape: selectivity around 1-4% with recall
// close to 1 — the filter removes two orders of magnitude of candidates
// while almost never dropping a correct pair.

#include <iostream>

#include "bench/harness.h"
#include "util/table_printer.h"

namespace briq::bench {
namespace {

void Run() {
  ExperimentSetup setup = BuildSetup(/*num_documents=*/400, /*seed=*/2024);

  core::FilterTrace trace;
  for (const core::PreparedDocument& doc : setup.test) {
    setup.system->AlignWithTrace(doc, &trace);
  }

  struct PaperRow {
    table::AggregateFunction func;
    const char* name;
    const char* selectivity;
    double recall;
  };
  const PaperRow rows[] = {
      {table::AggregateFunction::kSum, "sum", "0.01", 1.00},
      {table::AggregateFunction::kDiff, "difference", "0.01", 0.87},
      {table::AggregateFunction::kPercentage, "percentage", "<0.01", 0.91},
      {table::AggregateFunction::kChangeRatio, "change ratio", "<0.01", 0.88},
      {table::AggregateFunction::kNone, "single-cell", "0.04", 0.91},
  };

  util::TablePrinter printer(
      "Table VI: selectivity and recall after adaptive filtering\n"
      "(paper values in parentheses)");
  printer.SetHeader({"type", "selectivity", "recall"});
  auto fmt_sel = [](double s) {
    if (s > 0 && s < 0.005) return std::string("<0.01");
    return Fmt2(s);
  };
  for (const PaperRow& row : rows) {
    core::FilterTrace::TypeStat stat;
    auto it = trace.by_type.find(row.func);
    if (it != trace.by_type.end()) stat = it->second;
    printer.AddRow({row.name,
                    fmt_sel(stat.Selectivity()) + " (" + row.selectivity + ")",
                    Fmt2(stat.Recall()) + " (" + Fmt2(row.recall) + ")"});
  }
  printer.AddSeparator();
  printer.AddRow({"overall",
                  fmt_sel(trace.overall.Selectivity()) + " (0.01)",
                  Fmt2(trace.overall.Recall()) + " (0.91)"});
  std::cout << printer.ToString() << std::endl;
  std::cout << "pairs before filtering: " << FmtCount(trace.overall.pairs_before)
            << ", after: " << FmtCount(trace.overall.pairs_after) << "\n";
}

}  // namespace
}  // namespace briq::bench

int main() {
  briq::bench::Run();
  return 0;
}
