#ifndef BRIQ_BENCH_HARNESS_H_
#define BRIQ_BENCH_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "core/evaluation.h"
#include "core/pipeline.h"
#include "corpus/generator.h"

namespace briq::bench {

/// Shared experiment fixture: a tableS-style corpus split 80/10/10 into
/// train/validation/test (paper §VII-B), with a trained BriQ system.
struct ExperimentSetup {
  corpus::Corpus corpus;
  core::BriqConfig config;
  std::vector<core::PreparedDocument> train;
  std::vector<core::PreparedDocument> validation;
  std::vector<core::PreparedDocument> test;
  std::unique_ptr<core::BriqSystem> system;

  std::vector<const core::PreparedDocument*> TrainPointers() const;
};

/// Builds the corpus, prepares all documents, and trains BriQ.
/// Deterministic in `seed`.
ExperimentSetup BuildSetup(size_t num_documents = 300, uint64_t seed = 2024,
                           const core::BriqConfig* config = nullptr);

/// Prepares every document of a corpus under `config`.
std::vector<core::PreparedDocument> PrepareAll(
    const corpus::Corpus& corpus, const core::BriqConfig& config);

/// "0.73"-style fixed two-decimal formatting for result tables.
std::string Fmt2(double v);

/// Thousands-separated count.
std::string FmtCount(size_t v);

}  // namespace briq::bench

#endif  // BRIQ_BENCH_HARNESS_H_
