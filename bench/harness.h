#ifndef BRIQ_BENCH_HARNESS_H_
#define BRIQ_BENCH_HARNESS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "core/evaluation.h"
#include "core/pipeline.h"
#include "corpus/generator.h"

namespace briq::bench {

/// Shared experiment fixture: a tableS-style corpus split 80/10/10 into
/// train/validation/test (paper §VII-B), with a trained BriQ system.
struct ExperimentSetup {
  corpus::Corpus corpus;
  core::BriqConfig config;
  std::vector<core::PreparedDocument> train;
  std::vector<core::PreparedDocument> validation;
  std::vector<core::PreparedDocument> test;
  std::unique_ptr<core::BriqSystem> system;

  std::vector<const core::PreparedDocument*> TrainPointers() const;
};

/// Builds the corpus, prepares all documents, and trains BriQ.
/// Deterministic in `seed` (document preparation is parallel but each
/// document is prepared independently into its own slot).
ExperimentSetup BuildSetup(size_t num_documents = 300, uint64_t seed = 2024,
                           const core::BriqConfig* config = nullptr);

/// Prepares every document of a corpus under `config`, fanned out over
/// `num_threads` workers (0 = hardware concurrency, <= 1 sequential).
/// Output order matches corpus.documents regardless of thread count.
std::vector<core::PreparedDocument> PrepareAll(
    const corpus::Corpus& corpus, const core::BriqConfig& config,
    int num_threads = 0);

/// One machine-readable throughput measurement (see --json below).
struct BenchRecord {
  std::string bench;
  std::string domain;
  double docs_per_min = 0.0;
  int threads = 1;
  double wall_seconds = 0.0;
  /// Execution path: "memory" (fully materialized corpus, AlignBatch),
  /// "stream" (sharded ingestion through core::StreamingAligner), or
  /// "train" (out-of-core training through core::StreamingTrainer), so the
  /// perf trajectory in BENCH_throughput.json distinguishes the rates.
  std::string mode = "memory";
  /// Per-stage wall-clock breakdown in seconds (stage name -> total), from
  /// obs::AlignStageSecondsDelta over the run's metrics snapshots. Empty
  /// when the bench did not capture stages (or metrics are compiled out);
  /// written as a "stages" object in the JSON record when present.
  std::map<std::string, double> stage_seconds;
  /// Metrics-flusher records completed during the measured window (0 when
  /// the bench ran without a flusher, e.g. no --metrics-interval). Tracked
  /// per row so BENCH_throughput.json shows whether a rate was measured
  /// with the telemetry cadence active.
  size_t flushes = 0;
  /// Classification fast-path configuration the row was measured under
  /// (DESIGN.md §5g): FlatForest scoring and the candidate pre-index.
  /// Recorded per row so the perf trajectory distinguishes fast-path rates
  /// from legacy-route rates; defaults mirror BriqConfig.
  bool flat_forest = true;
  bool candidate_index = true;
};

/// Parses a `--json <path>` flag from argv; returns the path or "" when
/// the flag is absent. Unrelated arguments are ignored.
std::string JsonPathFromArgs(int argc, char** argv);

/// Writes `records` to `path` as a JSON array of
/// {bench, domain, docs_per_min, threads, wall_seconds} objects, so
/// throughput can be tracked across PRs (e.g. BENCH_throughput.json).
/// Returns false (with a log line) if the file cannot be written.
bool WriteBenchJson(const std::string& path,
                    const std::vector<BenchRecord>& records);

/// "0.73"-style fixed two-decimal formatting for result tables.
std::string Fmt2(double v);

/// Thousands-separated count.
std::string FmtCount(size_t v);

}  // namespace briq::bench

#endif  // BRIQ_BENCH_HARNESS_H_
