// Reproduces Table I of the paper: classifier training data, broken down
// into positive and negative samples per mention type. Expected shape:
// single-cell dominates the positives; negatives are dominated by virtual
// cells (hard negatives numerically close to the text mention).

#include <iostream>

#include "bench/harness.h"
#include "util/table_printer.h"

namespace briq::bench {
namespace {

struct PaperCounts {
  const char* type;
  size_t pos;
  size_t neg;
};

constexpr PaperCounts kPaper[] = {
    {"single-cell", 4376, 3315}, {"sum", 267, 9300}, {"percent", 115, 4995},
    {"diff.", 134, 7924},        {"ratio", 141, 5002},
};

void Run() {
  ExperimentSetup setup = BuildSetup(/*num_documents=*/400, /*seed=*/2024);
  const auto& stats = setup.system->classifier().stats();

  util::TablePrinter printer(
      "Table I: classifier training data (measured; paper values in "
      "parentheses)");
  printer.SetHeader({"type", "#pos", "#neg"});

  auto count = [](const std::map<table::AggregateFunction, size_t>& m,
                  table::AggregateFunction f) {
    auto it = m.find(f);
    return it == m.end() ? size_t{0} : it->second;
  };

  const table::AggregateFunction funcs[] = {
      table::AggregateFunction::kNone, table::AggregateFunction::kSum,
      table::AggregateFunction::kPercentage, table::AggregateFunction::kDiff,
      table::AggregateFunction::kChangeRatio};
  for (size_t i = 0; i < 5; ++i) {
    printer.AddRow({kPaper[i].type,
                    FmtCount(count(stats.positives, funcs[i])) + " (" +
                        FmtCount(kPaper[i].pos) + ")",
                    FmtCount(count(stats.negatives, funcs[i])) + " (" +
                        FmtCount(kPaper[i].neg) + ")"});
  }
  printer.AddSeparator();
  printer.AddRow({"total", FmtCount(stats.total_positives) + " (5,039)",
                  FmtCount(stats.total_negatives) + " (39,767)"});
  std::cout << printer.ToString() << std::endl;

  std::cout << "Note: the paper generates 5 negatives per positive but "
               "counts every candidate type;\nthe shape to verify is "
               "single-cell >> aggregates among positives and the "
               "~1:5+ imbalance.\n";
}

}  // namespace
}  // namespace briq::bench

int main() {
  briq::bench::Run();
  return 0;
}
